package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrm/internal/glue"
	"gridrm/internal/history"
	"gridrm/internal/resultset"
)

const testSrc = "gridrm:snmp://node:1"

func memRS(t testing.TB, host string, ram int64) *resultset.ResultSet {
	t.Helper()
	g := glue.MustLookup(glue.GroupMemory)
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := resultset.NewBuilder(meta).
		Append(host, ram, ram/2, ram*2, ram, 0.0, 0.0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// alertSink collects alerts and status lines for assertions.
type alertSink struct {
	mu     sync.Mutex
	alerts []string
	status []string
}

func (a *alertSink) alert(_, detail string) {
	a.mu.Lock()
	a.alerts = append(a.alerts, detail)
	a.mu.Unlock()
}

func (a *alertSink) state(_, detail string) {
	a.mu.Lock()
	a.status = append(a.status, detail)
	a.mu.Unlock()
}

func (a *alertSink) alertContaining(sub string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.alerts {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// newMem builds an in-memory store whose retention clock is pinned near the
// test sample times — the default time.Now clock would age them out at once.
func newMem() *history.Store {
	return history.New(history.Options{
		MaxSamplesPerKey: 4096,
		Clock:            func() time.Time { return time.Unix(90000, 0) },
	})
}

func testOpts(dir string, sink *alertSink) Options {
	now := time.Unix(90000, 0)
	o := Options{
		Dir:                dir,
		Fsync:              FsyncAlways,
		CheckpointInterval: -1, // no background loop: tests drive Checkpoint
		Clock:              func() time.Time { return now },
	}
	if sink != nil {
		o.Alert = sink.alert
		o.Status = sink.state
	}
	return o
}

func record(t testing.TB, s *Store, host string, at time.Time) {
	t.Helper()
	if err := s.Record(testSrc, glue.GroupMemory, memRS(t, host, 1024), at); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mem := newMem()
	s := Open(testOpts(dir, nil), mem)
	t0 := time.Unix(90000, 0)
	for i := 0; i < 10; i++ {
		record(t, s, fmt.Sprintf("host%d", i), t0.Add(time.Duration(i)*time.Second))
	}
	if st := s.Stats(); st.WALAppends != 10 || st.State != "durable" {
		t.Fatalf("before crash: %+v", st)
	}
	s.CrashClose() // no final sync, no checkpoint

	mem2 := newMem()
	s2 := Open(testOpts(dir, nil), mem2)
	defer s2.Close()
	if st := s2.Stats(); st.ReplayedRecords != 10 || st.CorruptRecords != 0 {
		t.Fatalf("after restart: %+v", st)
	}
	if n := mem2.SampleCount(testSrc, glue.GroupMemory); n != 10 {
		t.Fatalf("restored samples = %d, want 10", n)
	}
	rs, at, ok := mem2.Latest(testSrc, glue.GroupMemory)
	if !ok || !at.Equal(t0.Add(9*time.Second)) {
		t.Fatalf("Latest ok=%v at=%v", ok, at)
	}
	rs.Next()
	if h, _ := rs.GetString("HostName"); h != "host9" {
		t.Errorf("latest host = %q", h)
	}
}

func TestCheckpointCoversWALAndGCs(t *testing.T) {
	dir := t.TempDir()
	mem := newMem()
	s := Open(testOpts(dir, nil), mem)
	t0 := time.Unix(90000, 0)
	for i := 0; i < 5; i++ {
		record(t, s, fmt.Sprintf("h%d", i), t0.Add(time.Duration(i)*time.Second))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d", st.Checkpoints)
	}
	// Everything the checkpoint covers is gone; only the live segment stays.
	if st.WALSegments != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1 (live)", st.WALSegments)
	}
	s.CrashClose()

	mem2 := newMem()
	s2 := Open(testOpts(dir, nil), mem2)
	defer s2.Close()
	if st := s2.Stats(); st.ReplayedRecords != 5 || st.CorruptRecords != 0 {
		t.Fatalf("restore from checkpoint: %+v", st)
	}
	if n := mem2.SampleCount(testSrc, glue.GroupMemory); n != 5 {
		t.Fatalf("restored samples = %d", n)
	}
}

func TestCheckpointPlusWALTailRestoresBoth(t *testing.T) {
	dir := t.TempDir()
	mem := newMem()
	s := Open(testOpts(dir, nil), mem)
	t0 := time.Unix(90000, 0)
	record(t, s, "pre", t0)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	record(t, s, "post", t0.Add(time.Second)) // only in the WAL tail
	s.CrashClose()

	mem2 := newMem()
	s2 := Open(testOpts(dir, nil), mem2)
	defer s2.Close()
	if n := mem2.SampleCount(testSrc, glue.GroupMemory); n != 2 {
		t.Fatalf("restored samples = %d, want 2 (checkpoint + tail)", n)
	}
}

func TestCorruptCheckpointFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	mem := newMem()
	s := Open(testOpts(dir, nil), mem)
	t0 := time.Unix(90000, 0)
	record(t, s, "first", t0)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	record(t, s, "second", t0.Add(time.Second))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.CrashClose()

	// Flip a byte in the middle of the newest checkpoint.
	newest := filepath.Join(dir, checkpointName(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	sink := &alertSink{}
	mem2 := newMem()
	s2 := Open(testOpts(dir, sink), mem2)
	defer s2.Close()
	st := s2.Stats()
	if st.CorruptRecords == 0 {
		t.Fatalf("corrupt checkpoint not counted: %+v", st)
	}
	if !sink.alertContaining("corrupt checkpoint") {
		t.Errorf("no corruption alert: %v", sink.alerts)
	}
	// Fallback restores the older checkpoint; "second" was journaled after
	// checkpoint 1, so the WAL tail still has it.
	if n := mem2.SampleCount(testSrc, glue.GroupMemory); n != 2 {
		t.Fatalf("restored samples = %d, want 2", n)
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Errorf("corrupt checkpoint not removed: %v", err)
	}
}

func TestTornWALTailTruncatedAndAlerted(t *testing.T) {
	dir := t.TempDir()
	mem := newMem()
	s := Open(testOpts(dir, nil), mem)
	t0 := time.Unix(90000, 0)
	record(t, s, "good1", t0)
	record(t, s, "good2", t0.Add(time.Second))
	s.CrashClose()

	// A torn write: half a frame of garbage at the live segment's tail.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	live := segs[len(segs)-1].path
	f, err := os.OpenFile(live, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sink := &alertSink{}
	mem2 := newMem()
	s2 := Open(testOpts(dir, sink), mem2)
	defer s2.Close()
	st := s2.Stats()
	if st.ReplayedRecords != 2 {
		t.Fatalf("replayed = %d, want 2", st.ReplayedRecords)
	}
	if st.CorruptRecords != 1 {
		t.Fatalf("corrupt = %d, want 1", st.CorruptRecords)
	}
	if !sink.alertContaining("torn or corrupt WAL tail") {
		t.Errorf("no torn-tail alert: %v", sink.alerts)
	}
}

func TestDiskFaultDegradesThenReattaches(t *testing.T) {
	dir := t.TempDir()
	sink := &alertSink{}
	opts := testOpts(dir, sink)
	opts.ReattachBackoff = 5 * time.Millisecond
	mem := newMem()
	s := Open(opts, mem)
	defer s.Close()
	t0 := time.Unix(90000, 0)
	record(t, s, "ok", t0)

	s.setFailWrites(fmt.Errorf("EIO: device error"))
	record(t, s, "lost", t0.Add(time.Second)) // in memory, detaches the WAL
	if st := s.Stats(); st.State != "memory-only" || st.WALErrors != 1 {
		t.Fatalf("after fault: %+v", st)
	}
	if !sink.alertContaining("degraded to memory-only") {
		t.Errorf("no degradation alert: %v", sink.alerts)
	}
	// The harvest path never saw the fault.
	if n := mem.SampleCount(testSrc, glue.GroupMemory); n != 2 {
		t.Fatalf("memory samples = %d", n)
	}

	s.setFailWrites(nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.State == "durable" && st.Reattaches == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never re-attached: %+v", s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The re-attach checkpoint captured the memory-only window.
	if st := s.Stats(); st.Checkpoints == 0 {
		t.Fatalf("no checkpoint after re-attach: %+v", st)
	}
}

func TestDiskBudgetDropsOldestSegments(t *testing.T) {
	dir := t.TempDir()
	sink := &alertSink{}
	opts := testOpts(dir, sink)
	opts.SegmentMaxBytes = 256 // rotate every few records
	opts.MaxDiskBytes = 1024
	mem := newMem()
	s := Open(opts, mem)
	defer s.Close()
	t0 := time.Unix(90000, 0)
	for i := 0; i < 200; i++ {
		record(t, s, fmt.Sprintf("host%03d", i), t0.Add(time.Duration(i)*time.Second))
	}
	st := s.Stats()
	if st.SegmentsDropped == 0 {
		t.Fatalf("budget never dropped a segment: %+v", st)
	}
	if st.DiskBytes > 2*opts.MaxDiskBytes {
		t.Errorf("disk bytes %d way over budget %d", st.DiskBytes, opts.MaxDiskBytes)
	}
	if !sink.alertContaining("disk budget dropped un-checkpointed WAL segment") {
		t.Errorf("no budget alert: %v", sink.alerts)
	}
}

func TestOpenOnUnusableDirIsMemoryOnly(t *testing.T) {
	// A regular file where the directory should be: MkdirAll fails.
	base := t.TempDir()
	blocked := filepath.Join(base, "blocked")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sink := &alertSink{}
	opts := testOpts(filepath.Join(blocked, "history"), sink)
	opts.ReattachBackoff = time.Hour // keep the retry loop quiet
	mem := newMem()
	s := Open(opts, mem)
	defer s.Close()
	if st := s.Stats(); st.State != "memory-only" {
		t.Fatalf("state = %q", st.State)
	}
	if !sink.alertContaining("history dir unusable") {
		t.Errorf("no open alert: %v", sink.alerts)
	}
	// Records still land in memory — durability failure is never fatal.
	record(t, s, "h", time.Unix(90000, 0))
	if n := mem.SampleCount(testSrc, glue.GroupMemory); n != 1 {
		t.Fatalf("memory samples = %d", n)
	}
}

func TestCloseIsIdempotentAndFinalCheckpoints(t *testing.T) {
	dir := t.TempDir()
	mem := newMem()
	s := Open(testOpts(dir, nil), mem)
	record(t, s, "h", time.Unix(90000, 0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // second close is a no-op
		t.Fatal(err)
	}
	if st := s.Stats(); st.State != "closed" || st.Checkpoints != 1 {
		t.Fatalf("after close: %+v", st)
	}
	// Record after close: memory still works, WAL untouched.
	record(t, s, "late", time.Unix(90001, 0))
	if st := s.Stats(); st.WALAppends != 1 {
		t.Fatalf("append after close: %+v", st)
	}

	mem2 := newMem()
	s2 := Open(testOpts(dir, nil), mem2)
	defer s2.Close()
	if n := mem2.SampleCount(testSrc, glue.GroupMemory); n != 1 {
		t.Fatalf("restored = %d", n)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir, nil)
	opts.SegmentMaxBytes = 200
	mem := newMem()
	s := Open(opts, mem)
	t0 := time.Unix(90000, 0)
	for i := 0; i < 20; i++ {
		record(t, s, fmt.Sprintf("host%d", i), t0.Add(time.Duration(i)*time.Second))
	}
	if st := s.Stats(); st.WALSegments < 2 {
		t.Fatalf("no rotation: %+v", st)
	}
	s.CrashClose()

	mem2 := newMem()
	s2 := Open(testOpts(dir, nil), mem2)
	defer s2.Close()
	if n := mem2.SampleCount(testSrc, glue.GroupMemory); n != 20 {
		t.Fatalf("restored across segments = %d, want 20", n)
	}
}

func TestRepeatedRestartsAreIdempotent(t *testing.T) {
	dir := t.TempDir()
	mem := newMem()
	s := Open(testOpts(dir, nil), mem)
	t0 := time.Unix(90000, 0)
	for i := 0; i < 4; i++ {
		record(t, s, fmt.Sprintf("h%d", i), t0.Add(time.Duration(i)*time.Second))
	}
	s.CrashClose()
	// Crash-restart repeatedly without writing: the sample count must not
	// grow (checkpoint + WAL overlap dedupes on exact sample time).
	for i := 0; i < 3; i++ {
		mem2 := newMem()
		s2 := Open(testOpts(dir, nil), mem2)
		if n := mem2.SampleCount(testSrc, glue.GroupMemory); n != 4 {
			t.Fatalf("restart %d: samples = %d, want 4", i, n)
		}
		if i == 1 {
			_ = s2.Checkpoint() // interleave a checkpoint; still no growth
		}
		s2.CrashClose()
	}
}
