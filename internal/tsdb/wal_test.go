package tsdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// buildSegment writes a real segment with the given payloads and returns its
// path and the byte offset at which each frame ends (ascending).
func buildSegment(t testing.TB, dir string, payloads [][]byte) (string, []int64) {
	t.Helper()
	clock := func() time.Time { return time.Unix(90000, 0) }
	w, err := createSegment(dir, 1, FsyncOff, 0, clock, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for _, p := range payloads {
		if err := w.append(p); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, w.size)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	return w.path, ends
}

// TestReplayTornAtEveryOffset is the torn-write sweep: a real WAL truncated
// at every possible byte offset must replay without panicking, deliver only
// fully-written frames (never a partial or altered payload), and leave the
// file truncated back to the last valid frame boundary.
func TestReplayTornAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	payloads := [][]byte{
		[]byte("alpha"),
		[]byte("bravo-longer-payload"),
		{},              // empty payloads are legal frames
		[]byte("delta"), // final record, most likely torn in practice
	}
	src, ends := buildSegment(t, dir, payloads)
	full, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal-0000000000000001.seg")
			if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			var got [][]byte
			frames, truncated, err := replaySegment(path, func(p []byte) error {
				got = append(got, append([]byte(nil), p...))
				return nil
			})
			if err != nil {
				t.Fatalf("replay error: %v", err)
			}
			// wantFrames = frames whose end offset fits inside the cut.
			wantFrames := 0
			for _, end := range ends {
				if int64(cut) >= end {
					wantFrames++
				}
			}
			if frames != wantFrames {
				t.Fatalf("frames = %d, want %d", frames, wantFrames)
			}
			for i := 0; i < wantFrames; i++ {
				if !bytes.Equal(got[i], payloads[i]) {
					t.Fatalf("frame %d = %q, want %q", i, got[i], payloads[i])
				}
			}
			// A cut at a frame boundary (or the bare header, or an empty
			// file) is indistinguishable from a clean shutdown mid-stream:
			// no truncation needed. Any other offset is a torn tail.
			wantTruncated := cut != 0 && cut != segHeaderSize
			for _, end := range ends {
				if int64(cut) == end {
					wantTruncated = false
				}
			}
			if truncated != wantTruncated {
				t.Fatalf("truncated = %v, want %v", truncated, wantTruncated)
			}
			// Replaying the truncated file again must converge: same frames,
			// no further truncation.
			again, truncated2, err := replaySegment(path, nil)
			if err != nil {
				t.Fatalf("second replay: %v", err)
			}
			if again != frames || truncated2 {
				t.Fatalf("second replay frames=%d truncated=%v, want %d/false", again, truncated2, frames)
			}
		})
	}
}

func TestReplayBadMagicTruncatesToEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0000000000000001.seg")
	if err := os.WriteFile(path, []byte("NOPExxxxgarbage-follows"), 0o644); err != nil {
		t.Fatal(err)
	}
	frames, truncated, err := replaySegment(path, nil)
	if err != nil || frames != 0 || !truncated {
		t.Fatalf("frames=%d truncated=%v err=%v", frames, truncated, err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() != 0 {
		t.Fatalf("file not emptied: size=%d err=%v", fi.Size(), err)
	}
}

func TestReplayBitFlipStopsAtPreviousFrame(t *testing.T) {
	dir := t.TempDir()
	path, ends := buildSegment(t, dir, [][]byte{
		[]byte("keep-me"), []byte("flip-me"), []byte("unreachable"),
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the second frame.
	data[ends[0]+frameHeaderSize+2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	frames, truncated, err := replaySegment(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if frames != 1 || !truncated {
		t.Fatalf("frames=%d truncated=%v, want 1/true", frames, truncated)
	}
	if !bytes.Equal(got[0], []byte("keep-me")) {
		t.Fatalf("frame 0 = %q", got[0])
	}
	if fi, _ := os.Stat(path); fi.Size() != ends[0] {
		t.Fatalf("truncated to %d, want %d", fi.Size(), ends[0])
	}
}

func TestReplayEmptyAndMissingFiles(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "wal-0000000000000001.seg")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	frames, truncated, err := replaySegment(empty, nil)
	if err != nil || frames != 0 || truncated {
		t.Fatalf("empty: frames=%d truncated=%v err=%v", frames, truncated, err)
	}
	if _, _, err := replaySegment(filepath.Join(dir, "nope.seg"), nil); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestReplayAbsurdLengthPrefix(t *testing.T) {
	// A frame header claiming a payload larger than maxFrameBytes must not
	// allocate; it is treated as a torn tail.
	dir := t.TempDir()
	path, ends := buildSegment(t, dir, [][]byte{[]byte("ok")})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// length = 0xFFFFFFFF, crc = 0, no payload.
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	frames, truncated, err := replaySegment(path, nil)
	if err != nil || frames != 1 || !truncated {
		t.Fatalf("frames=%d truncated=%v err=%v", frames, truncated, err)
	}
	if fi, _ := os.Stat(path); fi.Size() != ends[0] {
		t.Fatalf("size=%d, want %d", fi.Size(), ends[0])
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{1, 42, 1<<40 + 7} {
		name := segmentName(seq)
		got, ok := parseSegmentName(name)
		if !ok || got != seq {
			t.Errorf("parse(%q) = %d,%v", name, got, ok)
		}
	}
	for _, bad := range []string{"wal-.seg", "wal-12", "12.seg", "checkpoint-0000000000000001.ckpt", "wal-x.seg"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Errorf("parse(%q) accepted", bad)
		}
	}
}
