// Package tsdb is the gateway's crash-safe history persistence layer: a
// segmented, CRC-framed write-ahead log plus periodic checkpoints of the
// retained in-memory state (modelled on cc-metric-store's split of a hot
// in-memory tier backed by checkpoint files). It sits behind the existing
// history.Store API — Record is journaled before it is acknowledged, and a
// restart restores the newest valid checkpoint then replays the WAL tail.
//
// The robustness contract: no crash, torn write, corrupt record or disk
// fault is ever fatal. Corruption is truncated back to the last valid
// record and alerted; a disk fault degrades the store to memory-only mode
// and a background loop re-attaches with jittered backoff.
package tsdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"gridrm/internal/history"
)

// recordVersion is the first byte of every encoded sample payload.
const recordVersion = 1

// Per-value type tags. The set mirrors the runtime types resultset rows
// hold for the GLUE kinds (string, int64, float64, bool, time.Time, nil).
const (
	tagNil    = 0
	tagString = 1
	tagInt    = 2
	tagFloat  = 3
	tagBool   = 4
	tagTime   = 5
)

// encodeSample appends the binary encoding of one sample to buf.
//
// Payload layout (varints are encoding/binary (u)varints, fixed ints are
// little-endian):
//
//	u8     version (1)
//	uvarint len + bytes   source URL
//	uvarint len + bytes   group name
//	varint                sample time, Unix nanoseconds
//	uvarint               row count
//	per row:  uvarint column count, then per value: u8 tag + payload
//	  tagNil: nothing          tagString: uvarint len + bytes
//	  tagInt: varint           tagFloat:  8-byte IEEE-754 bits
//	  tagBool: u8 0/1          tagTime:   varint Unix nanoseconds
func encodeSample(buf []byte, rec history.SampleRecord) []byte {
	buf = append(buf, recordVersion)
	buf = appendBytes(buf, rec.Source)
	buf = appendBytes(buf, rec.Group)
	buf = binary.AppendVarint(buf, rec.At.UnixNano())
	buf = binary.AppendUvarint(buf, uint64(len(rec.Rows)))
	for _, row := range rec.Rows {
		buf = binary.AppendUvarint(buf, uint64(len(row)))
		for _, v := range row {
			buf = appendValue(buf, v)
		}
	}
	return buf
}

func appendBytes(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, tagNil)
	case string:
		buf = append(buf, tagString)
		return appendBytes(buf, x)
	case int64:
		buf = append(buf, tagInt)
		return binary.AppendVarint(buf, x)
	case float64:
		buf = append(buf, tagFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	case bool:
		buf = append(buf, tagBool)
		if x {
			return append(buf, 1)
		}
		return append(buf, 0)
	case time.Time:
		buf = append(buf, tagTime)
		return binary.AppendVarint(buf, x.UnixNano())
	default:
		// A value outside the GLUE runtime types should not reach the
		// store; keep the record decodable by storing its string form
		// rather than failing the append.
		buf = append(buf, tagString)
		return appendBytes(buf, fmt.Sprint(x))
	}
}

// decoder is a bounds-checked cursor over an encoded payload. Every read
// fails softly: decodeSample never panics, whatever the input.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("tsdb: decode: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.data)-d.off)
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) value() any {
	switch tag := d.byte(); tag {
	case tagNil:
		return nil
	case tagString:
		return d.bytes()
	case tagInt:
		return d.varint()
	case tagFloat:
		if d.err == nil && len(d.data)-d.off < 8 {
			d.fail("truncated float at byte %d", d.off)
		}
		if d.err != nil {
			return nil
		}
		bits := binary.LittleEndian.Uint64(d.data[d.off:])
		d.off += 8
		return math.Float64frombits(bits)
	case tagBool:
		return d.byte() != 0
	case tagTime:
		return time.Unix(0, d.varint())
	default:
		d.fail("unknown value tag %d at byte %d", tag, d.off-1)
		return nil
	}
}

// decodeSample parses one encoded sample payload. It returns an error (never
// panics) on any malformed input — truncation, bad tags, absurd counts.
func decodeSample(data []byte) (history.SampleRecord, error) {
	d := &decoder{data: data}
	if v := d.byte(); d.err == nil && v != recordVersion {
		return history.SampleRecord{}, fmt.Errorf("tsdb: decode: unknown record version %d", v)
	}
	rec := history.SampleRecord{
		Source: d.bytes(),
		Group:  d.bytes(),
		At:     time.Unix(0, d.varint()),
	}
	rowCount := d.uvarint()
	// Each row costs at least one byte (its column count), so a count
	// beyond the remaining payload is corruption, not a big record.
	if d.err == nil && rowCount > uint64(len(data)-d.off) {
		d.fail("row count %d exceeds remaining %d bytes", rowCount, len(data)-d.off)
	}
	if d.err != nil {
		return history.SampleRecord{}, d.err
	}
	rec.Rows = make([][]any, 0, rowCount)
	for i := uint64(0); i < rowCount; i++ {
		colCount := d.uvarint()
		if d.err == nil && colCount > uint64(len(data)-d.off) {
			d.fail("column count %d exceeds remaining %d bytes", colCount, len(data)-d.off)
		}
		if d.err != nil {
			return history.SampleRecord{}, d.err
		}
		row := make([]any, 0, colCount)
		for j := uint64(0); j < colCount; j++ {
			row = append(row, d.value())
		}
		rec.Rows = append(rec.Rows, row)
	}
	if d.err != nil {
		return history.SampleRecord{}, d.err
	}
	if d.off != len(data) {
		return history.SampleRecord{}, fmt.Errorf("tsdb: decode: %d trailing bytes", len(data)-d.off)
	}
	return rec, nil
}
