package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WAL on-disk format. Each segment file is
//
//	"GRWL" magic + u32 version                     (8-byte header)
//	frame*                                          (append-only)
//
// where a frame is
//
//	u32 payload length + u32 CRC-32C of payload    (8-byte frame header)
//	payload bytes                                   (one encoded sample)
//
// all little-endian. Segments are named wal-<seq>.seg with a monotonically
// increasing sequence; the highest sequence is the live segment, lower ones
// are sealed and never appended to again.
const (
	segMagic        = "GRWL"
	segVersion      = 1
	segHeaderSize   = 8
	frameHeaderSize = 8
	// maxFrameBytes rejects absurd frame lengths during replay so a
	// corrupt length prefix cannot trigger a huge allocation.
	maxFrameBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Fsync policies.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncOff      = "off"
)

func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.seg", seq) }

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len("wal-"):len(name)-len(".seg")], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// segmentInfo is one on-disk WAL segment.
type segmentInfo struct {
	seq  uint64
	path string
	size int64
}

// listSegments returns the directory's WAL segments in ascending sequence
// order.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range entries {
		seq, ok := parseSegmentName(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		segs = append(segs, segmentInfo{seq: seq, path: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// segmentWriter appends CRC-framed records to one live segment file.
type segmentWriter struct {
	f    *os.File
	path string
	seq  uint64
	size int64
	buf  []byte

	policy    string
	syncEvery time.Duration
	lastSync  time.Time
	clock     func() time.Time
	onSync    func()
}

// createSegment opens a fresh segment file for appending and writes its
// header.
func createSegment(dir string, seq uint64, policy string, syncEvery time.Duration,
	clock func() time.Time, onSync func()) (*segmentWriter, error) {
	path := filepath.Join(dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	w := &segmentWriter{
		f: f, path: path, seq: seq,
		policy: policy, syncEvery: syncEvery, clock: clock, onSync: onSync,
		lastSync: clock(),
	}
	header := make([]byte, 0, segHeaderSize)
	header = append(header, segMagic...)
	header = binary.LittleEndian.AppendUint32(header, segVersion)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, err
	}
	w.size = segHeaderSize
	return w, nil
}

// append frames and writes one payload, syncing per the fsync policy.
func (w *segmentWriter) append(payload []byte) error {
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(payload, crcTable))
	w.buf = append(w.buf, payload...)
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.size += int64(len(w.buf))
	return w.maybeSync()
}

func (w *segmentWriter) maybeSync() error {
	switch w.policy {
	case FsyncAlways:
		return w.sync()
	case FsyncOff:
		return nil
	default: // FsyncInterval
		if w.clock().Sub(w.lastSync) >= w.syncEvery {
			return w.sync()
		}
		return nil
	}
}

func (w *segmentWriter) sync() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.lastSync = w.clock()
	if w.onSync != nil {
		w.onSync()
	}
	return nil
}

// close seals the segment: a final sync, then the file is closed.
func (w *segmentWriter) close() error {
	syncErr := w.sync()
	if err := w.f.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	return syncErr
}

// abandon closes the file descriptor without a final sync — the crash path
// (and the give-up path after a disk fault, where sync would fail anyway).
func (w *segmentWriter) abandon() { _ = w.f.Close() }

// replaySegment streams a segment's valid frames into fn in append order.
// Any corruption — a bad header, torn frame, CRC mismatch or an undecodable
// payload (fn returning an error) — truncates the file back to the last
// valid frame boundary and stops; corruption is recovered, never fatal.
// It returns the number of frames delivered and whether the segment was
// truncated.
func replaySegment(path string, fn func(payload []byte) error) (frames int, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	if len(data) == 0 {
		return 0, false, nil // a crash right after create: empty but valid
	}
	if len(data) < segHeaderSize || string(data[:4]) != segMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != segVersion {
		// The header itself is damaged: nothing in this segment can be
		// trusted. Truncate it to empty.
		return 0, true, os.Truncate(path, 0)
	}
	off := segHeaderSize
	for {
		if off == len(data) {
			return frames, false, nil
		}
		if len(data)-off < frameHeaderSize {
			break // torn frame header
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxFrameBytes || int(length) > len(data)-off-frameHeaderSize {
			break // torn or garbage length
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit flip
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				break // framed correctly but undecodable
			}
		}
		off += frameHeaderSize + int(length)
		frames++
	}
	return frames, true, os.Truncate(path, int64(off))
}
