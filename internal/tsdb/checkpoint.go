package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"gridrm/internal/history"
)

// Checkpoint on-disk format. A checkpoint-<seq>.ckpt file is
//
//	"GRCK" magic + u32 version + u64 walSeq       (16-byte header)
//	frame*                                         (one per sample)
//	end frame                                      (payload = {0xFF})
//
// with the same little-endian length+CRC framing as WAL segments. walSeq is
// the WAL sequence replay must resume from: the checkpoint covers every
// record in segments with a lower sequence. The end frame marks a complete
// write — a checkpoint missing it (a crash mid-write that survived the
// tmp+rename dance some other way) is invalid and the previous checkpoint
// is used instead. Files are written to a .tmp name, fsynced, then renamed.
const (
	ckptMagic      = "GRCK"
	ckptVersion    = 1
	ckptHeaderSize = 16
)

// ckptEndMarker terminates a complete checkpoint; encoded samples always
// start with recordVersion (1), so a 0xFF first byte cannot be confused
// with one.
var ckptEndMarker = []byte{0xFF}

func checkpointName(seq uint64) string { return fmt.Sprintf("checkpoint-%016d.ckpt", seq) }

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len("checkpoint-"):len(name)-len(".ckpt")], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// checkpointInfo is one on-disk checkpoint file.
type checkpointInfo struct {
	seq    uint64
	path   string
	size   int64
	walSeq uint64 // WAL sequence its replay resumes from (0 if unreadable)
}

// listCheckpoints returns the directory's checkpoints in ascending
// sequence order.
func listCheckpoints(dir string) ([]checkpointInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cps []checkpointInfo
	for _, e := range entries {
		seq, ok := parseCheckpointName(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		path := filepath.Join(dir, e.Name())
		cps = append(cps, checkpointInfo{
			seq: seq, path: path, size: info.Size(),
			walSeq: readCheckpointWALSeq(path),
		})
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].seq < cps[j].seq })
	return cps, nil
}

// readCheckpointWALSeq reads just a checkpoint's header walSeq; 0 (keep
// every segment) when the header cannot be read or is not a checkpoint's.
func readCheckpointWALSeq(path string) uint64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	var header [ckptHeaderSize]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		return 0
	}
	if string(header[:4]) != ckptMagic || binary.LittleEndian.Uint32(header[4:8]) != ckptVersion {
		return 0
	}
	return binary.LittleEndian.Uint64(header[8:16])
}

// writeCheckpoint atomically writes a checkpoint file: tmp, fsync, rename,
// directory fsync.
func writeCheckpoint(dir string, seq, walSeq uint64, records []history.SampleRecord) error {
	path := filepath.Join(dir, checkpointName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	header := make([]byte, 0, ckptHeaderSize)
	header = append(header, ckptMagic...)
	header = binary.LittleEndian.AppendUint32(header, ckptVersion)
	header = binary.LittleEndian.AppendUint64(header, walSeq)
	if _, err := bw.Write(header); err != nil {
		f.Close()
		return err
	}
	var frame, payload []byte
	writeFrame := func(p []byte) error {
		frame = frame[:0]
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(p)))
		frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(p, crcTable))
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		_, err := bw.Write(p)
		return err
	}
	for _, rec := range records {
		payload = encodeSample(payload[:0], rec)
		if err := writeFrame(payload); err != nil {
			f.Close()
			return err
		}
	}
	if err := writeFrame(ckptEndMarker); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename is durable; errors are ignored
// (not every filesystem supports it, and the rename itself already
// happened).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// loadCheckpoint parses one checkpoint file. Any anomaly — short header,
// bad magic, torn frame, CRC mismatch, undecodable sample, or a missing
// end marker — fails the whole file: checkpoints are all-or-nothing, the
// caller falls back to an older one.
func loadCheckpoint(path string) (records []history.SampleRecord, walSeq uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < ckptHeaderSize || string(data[:4]) != ckptMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != ckptVersion {
		return nil, 0, fmt.Errorf("tsdb: %s: bad checkpoint header", filepath.Base(path))
	}
	walSeq = binary.LittleEndian.Uint64(data[8:16])
	off := ckptHeaderSize
	sealed := false
	for off < len(data) {
		if len(data)-off < frameHeaderSize {
			return nil, 0, fmt.Errorf("tsdb: %s: torn frame at byte %d", filepath.Base(path), off)
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxFrameBytes || int(length) > len(data)-off-frameHeaderSize {
			return nil, 0, fmt.Errorf("tsdb: %s: torn frame at byte %d", filepath.Base(path), off)
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			return nil, 0, fmt.Errorf("tsdb: %s: CRC mismatch at byte %d", filepath.Base(path), off)
		}
		off += frameHeaderSize + int(length)
		if len(payload) == 1 && payload[0] == ckptEndMarker[0] {
			sealed = true
			if off != len(data) {
				return nil, 0, fmt.Errorf("tsdb: %s: %d bytes after end marker", filepath.Base(path), len(data)-off)
			}
			break
		}
		rec, err := decodeSample(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("tsdb: %s: %w", filepath.Base(path), err)
		}
		records = append(records, rec)
	}
	if !sealed {
		return nil, 0, fmt.Errorf("tsdb: %s: missing end marker (incomplete write)", filepath.Base(path))
	}
	return records, walSeq, nil
}
