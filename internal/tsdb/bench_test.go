package tsdb

import (
	"fmt"
	"testing"
	"time"

	"gridrm/internal/glue"
	"gridrm/internal/history"
)

// BenchmarkWALAppend measures the full Record path — in-memory store plus
// encode plus framed WAL write — under each fsync policy.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []string{FsyncOff, FsyncInterval, FsyncAlways} {
		b.Run(policy, func(b *testing.B) {
			opts := testOpts(b.TempDir(), nil)
			opts.Fsync = policy
			mem := history.New(history.Options{})
			s := Open(opts, mem)
			defer s.Close()
			rs := memRS(b, "bench-host", 4096)
			t0 := time.Unix(90000, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Record(testSrc, glue.GroupMemory, rs, t0.Add(time.Duration(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRestore measures startup recovery: open a directory holding a
// checkpoint plus a WAL tail and replay it into a fresh in-memory store.
func BenchmarkRestore(b *testing.B) {
	const records = 1000
	dir := b.TempDir()
	opts := testOpts(dir, nil)
	opts.Fsync = FsyncOff
	seedMem := newMem()
	seed := Open(opts, seedMem)
	t0 := time.Unix(90000, 0)
	for i := 0; i < records/2; i++ {
		record(b, seed, fmt.Sprintf("h%d", i), t0.Add(time.Duration(i)*time.Second))
	}
	if err := seed.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for i := records / 2; i < records; i++ {
		record(b, seed, fmt.Sprintf("h%d", i), t0.Add(time.Duration(i)*time.Second))
	}
	seed.CrashClose()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem := newMem()
		ro := testOpts(dir, nil)
		s := Open(ro, mem)
		if n := mem.SampleCount(testSrc, glue.GroupMemory); n != records {
			b.Fatalf("restored %d, want %d", n, records)
		}
		b.StopTimer()
		s.CrashClose() // leave the directory untouched for the next iteration
		b.StartTimer()
	}
}
