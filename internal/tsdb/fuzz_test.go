package tsdb

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gridrm/internal/history"
)

// fuzzSeedPayload is a realistic encoded sample to mutate from.
func fuzzSeedPayload() []byte {
	return encodeSample(nil, history.SampleRecord{
		Source: "gridrm:snmp://node:1",
		Group:  "Memory",
		At:     time.Unix(90000, 123),
		Rows: [][]any{
			{"host-a", int64(1024), 3.14, true, nil, time.Unix(90000, 0)},
			{"host-b", int64(2048), 2.71, false, nil, time.Unix(90001, 0)},
		},
	})
}

// fuzzSeedSegment is a well-formed two-frame WAL segment image.
func fuzzSeedSegment() []byte {
	var seg []byte
	seg = append(seg, segMagic...)
	seg = binary.LittleEndian.AppendUint32(seg, segVersion)
	for _, p := range [][]byte{fuzzSeedPayload(), []byte("short")} {
		seg = binary.LittleEndian.AppendUint32(seg, uint32(len(p)))
		seg = binary.LittleEndian.AppendUint32(seg, crc32.Checksum(p, crcTable))
		seg = append(seg, p...)
	}
	return seg
}

// FuzzWALDecode throws arbitrary bytes at both decode layers: the sample
// codec directly, and a whole segment image through replay. The properties:
// neither ever panics, replay truncation converges in one pass, and a frame
// whose CRC validates decodes to a record that re-encodes byte-identically.
func FuzzWALDecode(f *testing.F) {
	payload := fuzzSeedPayload()
	segment := fuzzSeedSegment()

	f.Add(payload)
	f.Add(segment)
	f.Add([]byte{})
	f.Add([]byte{recordVersion})
	f.Add(make([]byte, 64)) // zero-filled
	f.Add(payload[:len(payload)/2])
	f.Add(segment[:len(segment)-3]) // torn tail
	flipped := append([]byte(nil), payload...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)
	segFlipped := append([]byte(nil), segment...)
	segFlipped[segHeaderSize+frameHeaderSize+5] ^= 0x01
	f.Add(segFlipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Layer 1: the sample codec must fail softly on any input.
		if rec, err := decodeSample(data); err == nil {
			round := encodeSample(nil, rec)
			if again, err2 := decodeSample(round); err2 != nil {
				t.Fatalf("re-encode of accepted payload rejected: %v", err2)
			} else if again.Source != rec.Source || again.Group != rec.Group ||
				!again.At.Equal(rec.At) || len(again.Rows) != len(rec.Rows) {
				t.Fatalf("decode/encode/decode drifted: %+v vs %+v", rec, again)
			}
		}

		// Layer 2: the same bytes as a segment file must replay without
		// panicking, and replay's truncation must converge immediately.
		path := filepath.Join(t.TempDir(), "wal-0000000000000001.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var payloads [][]byte
		frames, _, err := replaySegment(path, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			_, derr := decodeSample(p)
			return derr
		})
		if err != nil {
			t.Fatalf("replay returned an error for in-memory corruption: %v", err)
		}
		// Every delivered frame was framed in the original bytes — replay
		// must never hand out bytes that were not written.
		for _, p := range payloads {
			if len(p) > 0 && !bytes.Contains(data, p) {
				t.Fatalf("replay produced bytes not present in input: %q", p)
			}
		}
		again, truncated, err := replaySegment(path, func(p []byte) error {
			_, derr := decodeSample(p)
			return derr
		})
		if err != nil || truncated || again != frames {
			t.Fatalf("replay did not converge: frames %d→%d truncated=%v err=%v",
				frames, again, truncated, err)
		}
	})
}
