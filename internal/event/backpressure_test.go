package event

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBoundedQueueDropsOldest: with MaxQueue set, a burst past the cap
// drops the oldest events and accounts for them — Publish never blocks and
// Drain still terminates.
func TestBoundedQueueDropsOldest(t *testing.T) {
	m := NewManager(Options{MaxQueue: 8})
	block := make(chan struct{})
	var got []Event
	var mu sync.Mutex
	m.Subscribe(Filter{}, func(ev Event) {
		<-block
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	// First event occupies the dispatcher; the rest hit the buffer cap.
	for i := 0; i < 100; i++ {
		m.Publish(Event{Name: "e", Value: float64(i), Time: time.Now()})
	}
	close(block)
	m.Drain()
	st := m.Stats()
	if st.Dropped == 0 {
		t.Fatal("overflow was not accounted")
	}
	if st.Dispatched+st.Dropped != st.Published {
		t.Fatalf("dispatched(%d) + dropped(%d) != published(%d)",
			st.Dispatched, st.Dropped, st.Published)
	}
	mu.Lock()
	last := got[len(got)-1]
	mu.Unlock()
	// Drop-oldest: the newest event always survives.
	if last.Value != 99 {
		t.Fatalf("newest event was dropped; last delivered = %v", last.Value)
	}
	m.Close()
}

// TestListenerQueueIsolatesSlowListener: with ListenerQueue set, a stuck
// listener overflows its own queue (with per-listener accounting) while
// the dispatcher and other listeners keep making progress. Drop-oldest
// guarantees the newest event always reaches a live listener eventually.
func TestListenerQueueIsolatesSlowListener(t *testing.T) {
	m := NewManager(Options{ListenerQueue: 4})
	stuck := make(chan struct{})
	slowID := m.SubscribeNamed("slow", Filter{}, func(Event) { <-stuck })
	var fastFinal atomic.Int64
	m.SubscribeNamed("fast", Filter{}, func(ev Event) {
		if ev.Name == "final" {
			fastFinal.Add(1)
		}
	})

	const n = 200
	for i := 0; i < n; i++ {
		m.Publish(Event{Name: "burst", Time: time.Now()})
	}
	m.Publish(Event{Name: "final", Time: time.Now()})

	// The dispatcher must process the whole burst despite the wedged
	// listener, and the fast listener must see the newest event.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Stats().Dispatched == n+1 && fastFinal.Load() == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := m.Stats().Dispatched; got != n+1 {
		t.Fatalf("dispatcher stalled behind stuck listener: dispatched %d/%d", got, n+1)
	}
	if fastFinal.Load() != 1 {
		t.Fatal("fast listener never saw the newest event")
	}
	if m.Stats().ListenerDropped == 0 {
		t.Fatal("slow-listener overflow was not accounted")
	}
	var slowDrops int64
	for _, ls := range m.ListenerStats() {
		if ls.ID == slowID {
			slowDrops = ls.Dropped
		}
	}
	if slowDrops == 0 {
		t.Fatal("per-listener drop counter not incremented")
	}
	close(stuck)
	m.Drain() // must terminate: pending deliveries finish once unstuck
	m.Close()
}

// TestUnsubscribeAsyncListenerDrainsQueue: unsubscribing an async listener
// lets its worker drain and exit without racing the dispatcher.
func TestUnsubscribeAsyncListenerDrainsQueue(t *testing.T) {
	m := NewManager(Options{ListenerQueue: 64})
	var seen atomic.Int64
	id := m.SubscribeNamed("tmp", Filter{}, func(Event) { seen.Add(1) })
	for i := 0; i < 10; i++ {
		m.Publish(Event{Name: "e", Time: time.Now()})
	}
	m.Drain()
	m.Unsubscribe(id)
	for i := 0; i < 10; i++ {
		m.Publish(Event{Name: "after", Time: time.Now()})
	}
	m.Drain()
	if got := seen.Load(); got != 10 {
		t.Fatalf("listener saw %d events, want exactly the 10 pre-unsubscribe", got)
	}
	if m.ListenerCount() != 0 {
		t.Fatal("listener still registered")
	}
	m.Close()
}

// TestCloseWithAsyncListeners: Close drains listener queues before
// returning.
func TestCloseWithAsyncListeners(t *testing.T) {
	m := NewManager(Options{ListenerQueue: 256})
	var seen atomic.Int64
	m.SubscribeNamed("l", Filter{}, func(Event) { seen.Add(1) })
	for i := 0; i < 100; i++ {
		m.Publish(Event{Name: "e", Time: time.Now()})
	}
	m.Close()
	if got := seen.Load(); got != 100 {
		t.Fatalf("Close lost deliveries: %d/100", got)
	}
}
