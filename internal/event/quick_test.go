package event

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// TestFilterWildcardProperties: the empty filter matches everything; a
// filter built from an event's own fields matches it; severity mismatch
// never matches.
func TestFilterWildcardProperties(t *testing.T) {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '%' || r == '_' {
				return 'x'
			}
			return r
		}, s)
	}
	f := func(source, host, name string, sev uint8) bool {
		sevs := []string{SeverityUsage, SeverityAlert, SeverityStatus}
		ev := Event{
			Source:   clean(source),
			Host:     clean(host),
			Name:     clean(name),
			Severity: sevs[int(sev)%len(sevs)],
			Time:     time.Unix(0, 0),
		}
		if !(Filter{}).Matches(ev) {
			return false
		}
		exact := Filter{Source: ev.Source, Host: ev.Host, Name: ev.Name, Severity: ev.Severity}
		if !exact.Matches(ev) {
			return false
		}
		other := sevs[(int(sev)+1)%len(sevs)]
		return !(Filter{Severity: other}).Matches(ev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestHistoryNeverExceedsRing: however many events are published, History
// returns at most the configured ring size, ordered by time.
func TestHistoryNeverExceedsRing(t *testing.T) {
	f := func(count uint16, size uint8) bool {
		n := int(count%512) + 1
		ring := int(size%64) + 1
		m := NewManager(Options{HistorySize: ring})
		defer m.Close()
		for i := 0; i < n; i++ {
			m.Publish(Event{Name: "x", Value: float64(i), Time: time.Unix(int64(i), 0)})
		}
		m.Drain()
		hist := m.History(Filter{}, time.Time{})
		if len(hist) > ring {
			return false
		}
		want := n
		if want > ring {
			want = ring
		}
		if len(hist) != want {
			return false
		}
		for i := 1; i < len(hist); i++ {
			if hist[i].Time.Before(hist[i-1].Time) {
				return false
			}
		}
		// The ring keeps the newest events.
		return len(hist) == 0 || int(hist[len(hist)-1].Value) == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
