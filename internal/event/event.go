// Package event implements the GridRM Event Manager (paper §3.1.5, Fig 4):
// the bridge between native events issued by data sources and GridRM's
// internal event format.
//
// Inbound: event drivers receive native events, a per-driver Formatter
// translates them into the standard Event, and Publish places them on the
// fast buffer — an unbounded queue drained by a single dispatcher, which
// "ensures events are not lost in a busy system". The dispatcher records
// every event for historical analysis, evaluates threshold rules (which can
// synthesise alert events), forwards events to all registered listeners
// whose filters match, and transmits matching events back out through
// outbound drivers after translation to the data source's native format.
package event

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/sqlparse"
)

// Severity levels for events.
const (
	SeverityUsage  = "Usage"
	SeverityAlert  = "Alert"
	SeverityStatus = "Status"
)

// Event is GridRM's standard internal event format.
type Event struct {
	// Source is the data-source URL (or component name) the event
	// concerns.
	Source string
	// Host is the subject host, when applicable.
	Host string
	// Name identifies the event ("load-high", "cpu.util", ...).
	Name string
	// Severity is one of the Severity* levels.
	Severity string
	// Value carries the numeric payload, if any.
	Value float64
	// Time is when the event occurred.
	Time time.Time
	// Detail optionally carries free text.
	Detail string
}

// Filter selects events. Empty fields are wildcards; Name and Host accept
// SQL LIKE patterns (% and _).
type Filter struct {
	Source   string
	Host     string
	Name     string
	Severity string
}

// Matches reports whether the filter selects ev.
func (f Filter) Matches(ev Event) bool {
	if f.Source != "" && f.Source != ev.Source {
		return false
	}
	if f.Severity != "" && f.Severity != ev.Severity {
		return false
	}
	if f.Host != "" && !sqlparse.MatchLike(f.Host, ev.Host) {
		return false
	}
	if f.Name != "" && !sqlparse.MatchLike(f.Name, ev.Name) {
		return false
	}
	return true
}

// Listener receives events on the dispatcher goroutine; implementations
// must be fast or hand off to their own goroutine.
type Listener func(Event)

// InboundDriver is an event driver that consumes a native event feed and
// publishes translated events; the Manager only manages its lifecycle.
type InboundDriver interface {
	// Name identifies the driver.
	Name() string
	// Start begins consuming; translated events go to sink.
	Start(sink func(Event)) error
	// Close stops consuming.
	Close() error
}

// OutboundDriver transmits GridRM events to a data source in its native
// format (Fig 4's Transmitter API: "format standard GridRM event into a
// native provider event ... transmit to data source").
type OutboundDriver interface {
	// Name identifies the driver.
	Name() string
	// Transmit delivers one event natively.
	Transmit(Event) error
}

// CompareOp is the comparison applied by a ThresholdRule.
type CompareOp int

// Threshold comparison operators.
const (
	Above CompareOp = iota
	Below
)

// ThresholdRule synthesises an alert when a matching event's value crosses
// a threshold ("Threshold exceeded. Alert transmitted", Fig 3/4).
type ThresholdRule struct {
	// Name names the synthesised alert event.
	Name string
	// Match selects the input events the rule watches.
	Match Filter
	// Op and Threshold define the crossing test.
	Op        CompareOp
	Threshold float64
	// Rearm is the hysteresis fraction: after firing, the rule re-arms
	// for a host once the value returns past Threshold*Rearm (Above) or
	// Threshold/Rearm (Below). Zero means fire on every crossing event.
	Rearm float64
}

func (r *ThresholdRule) exceeded(v float64) bool {
	if r.Op == Above {
		return v > r.Threshold
	}
	return v < r.Threshold
}

func (r *ThresholdRule) rearmed(v float64) bool {
	if r.Rearm == 0 {
		return true
	}
	if r.Op == Above {
		return v <= r.Threshold*r.Rearm
	}
	return v >= r.Threshold/r.Rearm
}

// Stats counts Event Manager activity.
type Stats struct {
	// Published counts events accepted by Publish.
	Published int64
	// Dispatched counts events fully processed by the dispatcher.
	Dispatched int64
	// Delivered counts listener invocations.
	Delivered int64
	// Dropped counts events discarded from a full fast buffer
	// (Options.MaxQueue overflow). Zero in the default unbounded mode.
	Dropped int64
	// ListenerDropped counts deliveries discarded at full listener queues
	// (Options.ListenerQueue overflow). Zero in the default synchronous
	// mode.
	ListenerDropped int64
	// Transmitted counts successful outbound transmissions.
	Transmitted int64
	// TransmitErrors counts failed outbound transmissions.
	TransmitErrors int64
	// Alerts counts threshold alerts synthesised.
	Alerts int64
	// HighWater is the deepest the fast buffer has been.
	HighWater int64
}

// ListenerStat is one listener's management view.
type ListenerStat struct {
	ID      int64  `json:"id"`
	Name    string `json:"name,omitempty"`
	Dropped int64  `json:"dropped"`
	Pending int    `json:"pending"`
}

// Options configures a Manager.
type Options struct {
	// HistorySize bounds the recorded event ring (default 4096).
	HistorySize int
	// MaxQueue bounds the fast buffer. The default 0 keeps the paper's
	// unbounded "events are not lost" mode — but an unbounded buffer
	// behind a wedged listener grows without bound, so busy gateways set
	// a cap. When full, Publish drops the *oldest* queued event and
	// counts it in Stats.Dropped; Publish itself never blocks either way.
	MaxQueue int
	// ListenerQueue gives each listener its own bounded queue drained by
	// its own goroutine, so one slow listener cannot stall the dispatcher
	// (or, transitively, every other listener). The default 0 keeps
	// synchronous delivery on the dispatcher goroutine. Overflow drops
	// oldest with per-listener accounting (ListenerStats).
	ListenerQueue int
}

// Manager is the Event Manager.
type Manager struct {
	opts Options

	mu        sync.Mutex
	queue     []Event // fast buffer
	cond      *sync.Cond
	closed    bool
	listeners map[int64]*subscription
	retired   []*subscription // async listeners awaiting channel close
	nextID    int64
	outbound  []outboundEntry
	rules     []*ruleState
	history   []Event
	histNext  int
	histFull  bool
	inbound   []InboundDriver

	published, dispatched, delivered       atomic.Int64
	dropped, listenerDropped               atomic.Int64
	transmitted, transmitErrors, alertsCnt atomic.Int64
	highWater                              atomic.Int64
	pending                                atomic.Int64 // enqueued on listener queues, not yet delivered

	wg  sync.WaitGroup // dispatcher
	lwg sync.WaitGroup // listener workers
}

type subscription struct {
	id      int64
	name    string
	filter  Filter
	fn      Listener
	ch      chan Event // nil = synchronous delivery on the dispatcher
	dropped atomic.Int64
}

type outboundEntry struct {
	filter Filter
	drv    OutboundDriver
}

type ruleState struct {
	rule  ThresholdRule
	fired map[string]bool // host → currently fired
}

// NewManager creates and starts an Event Manager.
func NewManager(opts Options) *Manager {
	if opts.HistorySize <= 0 {
		opts.HistorySize = 4096
	}
	m := &Manager{
		opts:      opts,
		listeners: make(map[int64]*subscription),
		history:   make([]Event, opts.HistorySize),
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(1)
	go m.dispatch()
	return m
}

// Publish places an event on the fast buffer. It never blocks on slow
// consumers; with the default unbounded buffer it never drops either,
// while a configured MaxQueue drops the oldest queued event (counted in
// Stats.Dropped) instead of growing without bound. Close discards events
// published after shutdown.
func (m *Manager) Publish(ev Event) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.opts.MaxQueue > 0 && len(m.queue) >= m.opts.MaxQueue {
		m.queue = m.queue[1:]
		m.dropped.Add(1)
	}
	m.queue = append(m.queue, ev)
	depth := int64(len(m.queue))
	m.cond.Signal()
	m.mu.Unlock()
	m.published.Add(1)
	for {
		hw := m.highWater.Load()
		if depth <= hw || m.highWater.CompareAndSwap(hw, depth) {
			return
		}
	}
}

// Subscribe registers a listener for events matching filter, returning an
// id for Unsubscribe.
func (m *Manager) Subscribe(filter Filter, fn Listener) int64 {
	return m.SubscribeNamed("", filter, fn)
}

// SubscribeNamed registers a listener with a label for ListenerStats.
// With Options.ListenerQueue > 0 the listener gets its own bounded queue
// and goroutine; events are delivered in order per listener, overflow
// drops oldest.
func (m *Manager) SubscribeNamed(name string, filter Filter, fn Listener) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	s := &subscription{id: m.nextID, name: name, filter: filter, fn: fn}
	if m.opts.ListenerQueue > 0 {
		s.ch = make(chan Event, m.opts.ListenerQueue)
		m.lwg.Add(1)
		go m.listenerWorker(s)
	}
	m.listeners[m.nextID] = s
	return m.nextID
}

// Unsubscribe removes a listener. An async listener's queue is still
// drained before its goroutine exits.
func (m *Manager) Unsubscribe(id int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.listeners[id]
	if !ok {
		return
	}
	delete(m.listeners, id)
	if s.ch != nil {
		// Only the dispatcher sends on s.ch, so the close must happen
		// there too — queue it and wake the dispatcher.
		m.retired = append(m.retired, s)
		m.cond.Signal()
	}
}

// listenerWorker drains one async listener's queue; it exits when the
// channel is closed (by the dispatcher on Unsubscribe, or Close).
func (m *Manager) listenerWorker(s *subscription) {
	defer m.lwg.Done()
	for ev := range s.ch {
		s.fn(ev)
		m.delivered.Add(1)
		m.pending.Add(-1)
	}
}

// offerListener enqueues ev on an async listener's queue, dropping the
// oldest entry (with accounting) when full. Called only from the
// dispatcher goroutine.
func (m *Manager) offerListener(s *subscription, ev Event) {
	select {
	case s.ch <- ev:
		m.pending.Add(1)
		return
	default:
	}
	select {
	case <-s.ch:
		m.pending.Add(-1)
		s.dropped.Add(1)
		m.listenerDropped.Add(1)
	default:
	}
	select {
	case s.ch <- ev:
		m.pending.Add(1)
	default:
		s.dropped.Add(1)
		m.listenerDropped.Add(1)
	}
}

// ListenerStats lists per-listener delivery state for the management
// view, sorted by id.
func (m *Manager) ListenerStats() []ListenerStat {
	m.mu.Lock()
	out := make([]ListenerStat, 0, len(m.listeners))
	for _, s := range m.listeners {
		out = append(out, ListenerStat{
			ID:      s.id,
			Name:    s.name,
			Dropped: s.dropped.Load(),
			Pending: len(s.ch),
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ListenerCount returns the number of registered listeners.
func (m *Manager) ListenerCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.listeners)
}

// AddOutbound registers an outbound driver for events matching filter.
func (m *Manager) AddOutbound(filter Filter, drv OutboundDriver) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.outbound = append(m.outbound, outboundEntry{filter: filter, drv: drv})
}

// AddRule installs a threshold rule.
func (m *Manager) AddRule(r ThresholdRule) error {
	if r.Name == "" {
		return fmt.Errorf("event: rule must be named")
	}
	if r.Rearm < 0 || r.Rearm > 1 {
		return fmt.Errorf("event: rearm fraction %v out of range [0,1]", r.Rearm)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rules = append(m.rules, &ruleState{rule: r, fired: make(map[string]bool)})
	return nil
}

// AttachInbound starts an inbound event driver feeding this manager; the
// manager closes it on shutdown.
func (m *Manager) AttachInbound(d InboundDriver) error {
	if err := d.Start(m.Publish); err != nil {
		return fmt.Errorf("event: starting %s: %w", d.Name(), err)
	}
	m.mu.Lock()
	m.inbound = append(m.inbound, d)
	m.mu.Unlock()
	return nil
}

// History returns recorded events matching filter at or after since
// (zero = all), oldest first.
func (m *Manager) History(filter Filter, since time.Time) []Event {
	m.mu.Lock()
	var all []Event
	if m.histFull {
		all = append(all, m.history[m.histNext:]...)
	}
	all = append(all, m.history[:m.histNext]...)
	m.mu.Unlock()
	var out []Event
	for _, ev := range all {
		if !since.IsZero() && ev.Time.Before(since) {
			continue
		}
		if filter.Matches(ev) {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Stats returns a snapshot of counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Published:       m.published.Load(),
		Dispatched:      m.dispatched.Load(),
		Delivered:       m.delivered.Load(),
		Dropped:         m.dropped.Load(),
		ListenerDropped: m.listenerDropped.Load(),
		Transmitted:     m.transmitted.Load(),
		TransmitErrors:  m.transmitErrors.Load(),
		Alerts:          m.alertsCnt.Load(),
		HighWater:       m.highWater.Load(),
	}
}

// QueueDepth returns how many events are waiting in the fast buffer right
// now (the dispatcher backlog; exported as gridrm_event_queue_depth).
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Drain blocks until every event published so far has been dispatched and
// every enqueued listener delivery has completed. Events dropped from a
// bounded fast buffer count as handled — they will never dispatch.
func (m *Manager) Drain() {
	for {
		m.mu.Lock()
		empty := len(m.queue) == 0
		m.mu.Unlock()
		if empty &&
			m.dispatched.Load()+m.dropped.Load() >= m.published.Load() &&
			m.pending.Load() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the dispatcher after draining the buffer and closes inbound
// drivers.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	inbound := m.inbound
	m.inbound = nil
	m.cond.Signal()
	m.mu.Unlock()
	for _, d := range inbound {
		_ = d.Close()
	}
	m.wg.Wait()
	// The dispatcher is gone: closing listener channels is now safe (only
	// the dispatcher ever sends on them). Workers drain their queues and
	// exit.
	m.mu.Lock()
	subs := make([]*subscription, 0, len(m.listeners)+len(m.retired))
	for _, s := range m.listeners {
		subs = append(subs, s)
	}
	subs = append(subs, m.retired...)
	m.retired = nil
	m.mu.Unlock()
	for _, s := range subs {
		if s.ch != nil {
			close(s.ch)
		}
	}
	m.lwg.Wait()
}

func (m *Manager) dispatch() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && len(m.retired) == 0 && !m.closed {
			m.cond.Wait()
		}
		retired := m.retired
		m.retired = nil
		done := len(m.queue) == 0 && m.closed
		batch := m.queue
		m.queue = nil
		m.mu.Unlock()
		// Close unsubscribed async listeners here, between batches, where
		// no send on their channel can be in flight.
		for _, s := range retired {
			close(s.ch)
		}
		if done {
			return
		}
		for _, ev := range batch {
			m.process(ev)
			m.dispatched.Add(1)
		}
	}
}

func (m *Manager) process(ev Event) {
	m.mu.Lock()
	// Record for historical analysis.
	m.history[m.histNext] = ev
	m.histNext++
	if m.histNext == len(m.history) {
		m.histNext = 0
		m.histFull = true
	}
	// Threshold rules may synthesise alerts, processed inline so ordering
	// is alert-after-cause.
	var alerts []Event
	for _, rs := range m.rules {
		if !rs.rule.Match.Matches(ev) {
			continue
		}
		key := ev.Host
		switch {
		case !rs.fired[key] && rs.rule.exceeded(ev.Value):
			rs.fired[key] = true
			alerts = append(alerts, Event{
				Source:   ev.Source,
				Host:     ev.Host,
				Name:     rs.rule.Name,
				Severity: SeverityAlert,
				Value:    ev.Value,
				Time:     ev.Time,
				Detail:   fmt.Sprintf("threshold %v crossed by %s=%v", rs.rule.Threshold, ev.Name, ev.Value),
			})
		case rs.fired[key] && rs.rule.rearmed(ev.Value):
			rs.fired[key] = false
		}
	}
	subs := make([]*subscription, 0, len(m.listeners))
	for _, s := range m.listeners {
		if s.filter.Matches(ev) {
			subs = append(subs, s)
		}
	}
	outs := make([]outboundEntry, 0, len(m.outbound))
	for _, o := range m.outbound {
		if o.filter.Matches(ev) {
			outs = append(outs, o)
		}
	}
	m.mu.Unlock()

	for _, s := range subs {
		if s.ch != nil {
			m.offerListener(s, ev)
			continue
		}
		s.fn(ev)
		m.delivered.Add(1)
	}
	for _, o := range outs {
		if err := o.drv.Transmit(ev); err != nil {
			m.transmitErrors.Add(1)
		} else {
			m.transmitted.Add(1)
		}
	}
	for _, alert := range alerts {
		m.alertsCnt.Add(1)
		m.published.Add(1) // alerts count as published events
		m.process(alert)
		m.dispatched.Add(1)
	}
}
