package event

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newMgr(t *testing.T) *Manager {
	t.Helper()
	m := NewManager(Options{HistorySize: 64})
	t.Cleanup(m.Close)
	return m
}

func at(sec int) time.Time { return time.Unix(int64(sec), 0) }

func TestFilterMatches(t *testing.T) {
	ev := Event{Source: "s1", Host: "site-node01", Name: "load-high", Severity: SeverityAlert}
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{}, true},
		{Filter{Source: "s1"}, true},
		{Filter{Source: "s2"}, false},
		{Filter{Host: "site-node01"}, true},
		{Filter{Host: "site-%"}, true},
		{Filter{Host: "other-%"}, false},
		{Filter{Name: "load-%"}, true},
		{Filter{Name: "load_high"}, true}, // _ is single-char wildcard
		{Filter{Severity: SeverityAlert}, true},
		{Filter{Severity: SeverityUsage}, false},
		{Filter{Source: "s1", Host: "site-node0_", Name: "%high", Severity: SeverityAlert}, true},
	}
	for _, c := range cases {
		if got := c.f.Matches(ev); got != c.want {
			t.Errorf("%+v.Matches = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestPublishDeliver(t *testing.T) {
	m := newMgr(t)
	var got []Event
	var mu sync.Mutex
	m.Subscribe(Filter{Severity: SeverityUsage}, func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	m.Publish(Event{Name: "a", Severity: SeverityUsage, Time: at(1)})
	m.Publish(Event{Name: "b", Severity: SeverityAlert, Time: at(2)})
	m.Publish(Event{Name: "c", Severity: SeverityUsage, Time: at(3)})
	m.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Errorf("delivered %v", got)
	}
	s := m.Stats()
	if s.Published != 3 || s.Dispatched != 3 || s.Delivered != 2 {
		t.Errorf("stats %+v", s)
	}
}

func TestUnsubscribe(t *testing.T) {
	m := newMgr(t)
	var n atomic.Int64
	id := m.Subscribe(Filter{}, func(Event) { n.Add(1) })
	m.Publish(Event{Name: "x", Time: at(1)})
	m.Drain()
	m.Unsubscribe(id)
	m.Publish(Event{Name: "y", Time: at(2)})
	m.Drain()
	if n.Load() != 1 {
		t.Errorf("deliveries = %d", n.Load())
	}
	if m.ListenerCount() != 0 {
		t.Error("listener count nonzero")
	}
}

func TestNoLossUnderBurst(t *testing.T) {
	m := newMgr(t)
	var n atomic.Int64
	block := make(chan struct{})
	m.Subscribe(Filter{}, func(ev Event) {
		if ev.Name == "blocker" {
			<-block
		}
		n.Add(1)
	})
	m.Publish(Event{Name: "blocker", Time: at(0)})
	const burst = 10000
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < burst/8; j++ {
				m.Publish(Event{Name: "burst", Time: at(1)})
			}
		}()
	}
	wg.Wait()
	close(block)
	m.Drain()
	if n.Load() != burst+1 {
		t.Errorf("delivered %d of %d (fast buffer lost events)", n.Load(), burst+1)
	}
	if m.Stats().HighWater < 2 {
		t.Errorf("high water %d, expected backlog while blocked", m.Stats().HighWater)
	}
}

func TestHistoryRingAndFilter(t *testing.T) {
	m := NewManager(Options{HistorySize: 4})
	defer m.Close()
	for i := 1; i <= 6; i++ {
		name := "even"
		if i%2 == 1 {
			name = "odd"
		}
		m.Publish(Event{Name: name, Value: float64(i), Time: at(i)})
	}
	m.Drain()
	all := m.History(Filter{}, time.Time{})
	if len(all) != 4 {
		t.Fatalf("history = %d, want ring size 4", len(all))
	}
	if all[0].Value != 3 || all[3].Value != 6 {
		t.Errorf("ring kept %v..%v", all[0].Value, all[3].Value)
	}
	odd := m.History(Filter{Name: "odd"}, time.Time{})
	if len(odd) != 2 {
		t.Errorf("odd history = %d", len(odd))
	}
	since := m.History(Filter{}, at(5))
	if len(since) != 2 {
		t.Errorf("since history = %d", len(since))
	}
}

func TestThresholdRule(t *testing.T) {
	m := newMgr(t)
	if err := m.AddRule(ThresholdRule{
		Name:      "load-alarm",
		Match:     Filter{Name: "load"},
		Op:        Above,
		Threshold: 4.0,
		Rearm:     0.75,
	}); err != nil {
		t.Fatal(err)
	}
	var alerts []Event
	var mu sync.Mutex
	m.Subscribe(Filter{Severity: SeverityAlert}, func(ev Event) {
		mu.Lock()
		alerts = append(alerts, ev)
		mu.Unlock()
	})
	vals := []float64{1, 5, 6, 7, 2, 8} // fire at 5, suppressed 6/7, rearm at 2, fire at 8
	for i, v := range vals {
		m.Publish(Event{Host: "h1", Name: "load", Severity: SeverityUsage, Value: v, Time: at(i)})
	}
	m.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d, want 2 (hysteresis)", len(alerts))
	}
	if alerts[0].Value != 5 || alerts[1].Value != 8 {
		t.Errorf("alert values %v, %v", alerts[0].Value, alerts[1].Value)
	}
	if alerts[0].Name != "load-alarm" || alerts[0].Severity != SeverityAlert {
		t.Errorf("alert %+v", alerts[0])
	}
	if m.Stats().Alerts != 2 {
		t.Errorf("alert count = %d", m.Stats().Alerts)
	}
}

func TestThresholdPerHost(t *testing.T) {
	m := newMgr(t)
	_ = m.AddRule(ThresholdRule{Name: "alarm", Match: Filter{Name: "load"}, Op: Above, Threshold: 1})
	var n atomic.Int64
	m.Subscribe(Filter{Severity: SeverityAlert}, func(Event) { n.Add(1) })
	m.Publish(Event{Host: "a", Name: "load", Value: 2, Time: at(1)})
	m.Publish(Event{Host: "b", Name: "load", Value: 2, Time: at(1)})
	m.Publish(Event{Host: "a", Name: "load", Value: 3, Time: at(2)}) // still fired, no re-alert
	m.Drain()
	if n.Load() != 2 {
		t.Errorf("alerts = %d, want one per host", n.Load())
	}
}

func TestThresholdBelow(t *testing.T) {
	m := newMgr(t)
	_ = m.AddRule(ThresholdRule{Name: "disk-low", Match: Filter{Name: "disk.free"}, Op: Below, Threshold: 100})
	var n atomic.Int64
	m.Subscribe(Filter{Name: "disk-low"}, func(Event) { n.Add(1) })
	m.Publish(Event{Host: "h", Name: "disk.free", Value: 500, Time: at(1)})
	m.Publish(Event{Host: "h", Name: "disk.free", Value: 50, Time: at(2)})
	m.Drain()
	if n.Load() != 1 {
		t.Errorf("below alerts = %d", n.Load())
	}
}

func TestAddRuleValidation(t *testing.T) {
	m := newMgr(t)
	if err := m.AddRule(ThresholdRule{}); err == nil {
		t.Error("unnamed rule accepted")
	}
	if err := m.AddRule(ThresholdRule{Name: "x", Rearm: 2}); err == nil {
		t.Error("rearm > 1 accepted")
	}
	if err := m.AddRule(ThresholdRule{Name: "x", Rearm: -0.1}); err == nil {
		t.Error("negative rearm accepted")
	}
}

// recordingOutbound collects transmitted events; failing when told to.
type recordingOutbound struct {
	mu   sync.Mutex
	evs  []Event
	fail bool
}

func (r *recordingOutbound) Name() string { return "rec" }

func (r *recordingOutbound) Transmit(ev Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail {
		return errors.New("down")
	}
	r.evs = append(r.evs, ev)
	return nil
}

func TestOutboundTransmit(t *testing.T) {
	m := newMgr(t)
	rec := &recordingOutbound{}
	m.AddOutbound(Filter{Severity: SeverityAlert}, rec)
	m.Publish(Event{Name: "usage", Severity: SeverityUsage, Time: at(1)})
	m.Publish(Event{Name: "alert", Severity: SeverityAlert, Time: at(2)})
	m.Drain()
	rec.mu.Lock()
	n := len(rec.evs)
	rec.mu.Unlock()
	if n != 1 {
		t.Errorf("transmitted %d, want 1", n)
	}
	if m.Stats().Transmitted != 1 {
		t.Errorf("stats transmitted = %d", m.Stats().Transmitted)
	}
	rec.mu.Lock()
	rec.fail = true
	rec.mu.Unlock()
	m.Publish(Event{Name: "alert2", Severity: SeverityAlert, Time: at(3)})
	m.Drain()
	if m.Stats().TransmitErrors != 1 {
		t.Errorf("transmit errors = %d", m.Stats().TransmitErrors)
	}
}

func TestRuleAlertReachesOutbound(t *testing.T) {
	// The full Fig 4 path: native usage event → threshold → alert →
	// outbound transmission.
	m := newMgr(t)
	rec := &recordingOutbound{}
	m.AddOutbound(Filter{Severity: SeverityAlert}, rec)
	_ = m.AddRule(ThresholdRule{Name: "hot", Match: Filter{Name: "temp"}, Op: Above, Threshold: 90})
	m.Publish(Event{Host: "h", Name: "temp", Severity: SeverityUsage, Value: 95, Time: at(1)})
	m.Drain()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.evs) != 1 || rec.evs[0].Name != "hot" {
		t.Errorf("outbound got %v", rec.evs)
	}
}

type fakeInbound struct {
	sink    func(Event)
	started atomic.Bool
	closed  atomic.Bool
}

func (f *fakeInbound) Name() string { return "fake" }
func (f *fakeInbound) Start(sink func(Event)) error {
	f.sink = sink
	f.started.Store(true)
	return nil
}
func (f *fakeInbound) Close() error { f.closed.Store(true); return nil }

func TestAttachInboundLifecycle(t *testing.T) {
	m := NewManager(Options{})
	in := &fakeInbound{}
	if err := m.AttachInbound(in); err != nil {
		t.Fatal(err)
	}
	if !in.started.Load() {
		t.Error("inbound not started")
	}
	var n atomic.Int64
	m.Subscribe(Filter{}, func(Event) { n.Add(1) })
	in.sink(Event{Name: "native", Time: at(1)})
	m.Drain()
	if n.Load() != 1 {
		t.Error("inbound event not delivered")
	}
	m.Close()
	if !in.closed.Load() {
		t.Error("inbound not closed on shutdown")
	}
}

func TestPublishAfterClose(t *testing.T) {
	m := NewManager(Options{})
	m.Close()
	m.Publish(Event{Name: "late", Time: at(1)}) // must not panic or deadlock
	if m.Stats().Published != 0 {
		t.Error("post-close publish counted")
	}
	m.Close() // idempotent
}

func TestCloseDrainsBuffer(t *testing.T) {
	m := NewManager(Options{})
	var n atomic.Int64
	m.Subscribe(Filter{}, func(Event) { n.Add(1) })
	for i := 0; i < 100; i++ {
		m.Publish(Event{Name: "x", Time: at(i)})
	}
	m.Close()
	if n.Load() != 100 {
		t.Errorf("Close lost %d events", 100-n.Load())
	}
}
