package sitekit

import (
	"context"
	"testing"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/security"
)

func TestStartAndManifest(t *testing.T) {
	s, err := Start(Options{Name: "kit", Hosts: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Manifest()
	if m.Site != "kit" || len(m.SNMP) != 2 || len(m.Hosts) != 2 {
		t.Fatalf("manifest %+v", m)
	}
	if m.Ganglia == "" || m.NWS == "" || m.NetLogger == "" || m.SCMS == "" {
		t.Errorf("missing endpoints %+v", m)
	}
	data, err := MarshalManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Site != m.Site || len(back.SNMP) != len(m.SNMP) {
		t.Errorf("round trip %+v", back)
	}
	if _, err := ParseManifest([]byte("junk")); err == nil {
		t.Error("bad manifest accepted")
	}
}

func TestSourceConfigs(t *testing.T) {
	s, err := Start(Options{Name: "kit", Hosts: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfgs := SourceConfigs(s.Manifest(), s.Opts, false)
	if len(cfgs) != 6 { // 2 snmp + 4 site-wide
		t.Fatalf("configs = %d", len(cfgs))
	}
	for _, cfg := range cfgs {
		if len(cfg.Drivers) != 1 {
			t.Errorf("static config %s has prefs %v", cfg.URL, cfg.Drivers)
		}
	}
	dyn := SourceConfigs(s.Manifest(), s.Opts, true)
	for _, cfg := range dyn {
		if len(cfg.Drivers) != 0 {
			t.Errorf("dynamic config %s has prefs %v", cfg.URL, cfg.Drivers)
		}
	}
}

func TestNewGatewayEndToEnd(t *testing.T) {
	s, err := Start(Options{Name: "kit", Hosts: 2, Seed: 9, CoarseCacheTTL: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gw, err := NewGateway(s.Manifest(), s.Opts, false)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if got := len(gw.Drivers()); got != 7 {
		t.Errorf("drivers = %d", got)
	}
	resp, err := gw.QueryContext(context.Background(), core.QueryOptions{
		Principal: security.Principal{Name: "kit-test"},
		SQL:       "SELECT * FROM Processor",
		Mode:      core.ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 snmp + 2×4 site-wide views... snmp agents serve 1 host each:
	// 2 + ganglia 2 + nws 2 + netlogger 2 + scms 2 = 10.
	if resp.ResultSet.Len() != 10 {
		t.Errorf("rows = %d; %+v", resp.ResultSet.Len(), resp.Sources)
	}
}

func TestTicker(t *testing.T) {
	s, err := Start(Options{Name: "kit", Hosts: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := s.Sim.Tick()
	s.StartTicker(5 * time.Millisecond)
	s.StartTicker(5 * time.Millisecond) // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && s.Sim.Tick() < start+3 {
		time.Sleep(5 * time.Millisecond)
	}
	s.StopTicker()
	s.StopTicker() // idempotent
	if s.Sim.Tick() < start+3 {
		t.Errorf("ticker advanced only to %d", s.Sim.Tick())
	}
}

func TestHostPortParts(t *testing.T) {
	if hostPart("127.0.0.1:99") != "127.0.0.1" || portPart("127.0.0.1:99") != 99 {
		t.Error("addr split wrong")
	}
	if hostPart("noport") != "noport" || portPart("noport") != 0 {
		t.Error("portless addr")
	}
	if portPart("h:bad") != 0 {
		t.Error("bad port parsed")
	}
}

func TestOptionsNestedAndFlatAliases(t *testing.T) {
	// Flat (deprecated) spellings flow into the nested groups.
	flat := Options{
		AgentTimeout:              3 * time.Second,
		HarvestTimeout:            4 * time.Second,
		QueryTimeout:              5 * time.Second,
		HistoryDir:                "/tmp/h",
		HistoryFsync:              "always",
		HistoryCheckpointInterval: time.Minute,
		HistoryMaxDiskBytes:       1024,
		SubscribeQueue:            7,
		SubscribeStall:            8 * time.Second,
	}
	cfg := flat.CoreConfig("s")
	if cfg.HarvestTimeout != 4*time.Second || cfg.QueryTimeout != 5*time.Second {
		t.Errorf("flat timeouts not honoured: %+v", cfg)
	}
	if cfg.Durable.Dir != "/tmp/h" || cfg.Durable.Fsync != "always" ||
		cfg.Durable.CheckpointInterval != time.Minute || cfg.Durable.MaxDiskBytes != 1024 {
		t.Errorf("flat history not honoured: %+v", cfg.Durable)
	}
	if cfg.Push.QueueSize != 7 || cfg.Push.Stall != 8*time.Second {
		t.Errorf("flat push not honoured: %+v", cfg.Push)
	}
	flat.fill()
	if flat.Timeouts.Agent != 3*time.Second {
		t.Errorf("AgentTimeout alias not merged: %+v", flat.Timeouts)
	}

	// When both spellings are set, the nested group wins, and fill()
	// mirrors it back onto the alias so old readers agree.
	both := Options{
		Timeouts:       TimeoutOptions{Harvest: time.Second},
		HarvestTimeout: 9 * time.Second,
		History:        HistoryOptions{Dir: "/tmp/new"},
		HistoryDir:     "/tmp/old",
	}
	cfg = both.CoreConfig("s")
	if cfg.HarvestTimeout != time.Second || cfg.Durable.Dir != "/tmp/new" {
		t.Errorf("nested fields must win: %+v, %+v", cfg.HarvestTimeout, cfg.Durable.Dir)
	}
	both.fill()
	if both.HarvestTimeout != time.Second || both.HistoryDir != "/tmp/new" {
		t.Errorf("aliases not mirrored back: %+v", both)
	}
	if both.Federation.Role != "site" {
		t.Errorf("default federation role = %q, want site", both.Federation.Role)
	}
}
