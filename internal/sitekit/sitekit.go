// Package sitekit assembles complete simulated Grid sites: one sim.Site
// observed through every bundled native agent (per-host SNMP, site-wide
// Ganglia/NWS/NetLogger/SCMS), plus helpers to register the matching
// drivers with a gateway and to describe the deployment as a manifest the
// command-line tools exchange. Examples, cmd binaries and the benchmark
// harness all build their testbeds from this package.
package sitekit

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"gridrm/internal/agents/ganglia"
	"gridrm/internal/agents/netlogger"
	"gridrm/internal/agents/nws"
	"gridrm/internal/agents/scms"
	"gridrm/internal/agents/sim"
	"gridrm/internal/agents/snmp"
	"gridrm/internal/core"
	"gridrm/internal/driver"
	"gridrm/internal/drivers/faultdrv"
	"gridrm/internal/drivers/gangliadrv"
	"gridrm/internal/drivers/gatewaydrv"
	"gridrm/internal/drivers/histdrv"
	"gridrm/internal/drivers/netloggerdrv"
	"gridrm/internal/drivers/nwsdrv"
	"gridrm/internal/drivers/scmsdrv"
	"gridrm/internal/drivers/snmpdrv"
	"gridrm/internal/health"
	"gridrm/internal/router"
	"gridrm/internal/trace"
	"gridrm/internal/tsdb"
)

// TimeoutOptions groups a site's time bounds.
type TimeoutOptions struct {
	// Agent is passed to sources as the driver "timeout" property
	// (default 2s).
	Agent time.Duration
	// Harvest bounds each source harvest in the gateway built by
	// NewGateway (0 = core default, negative = disabled).
	Harvest time.Duration
	// Query bounds whole requests when the caller supplies no deadline
	// (0 = core default, negative = disabled).
	Query time.Duration
}

// HistoryOptions groups the crash-safe durable-history knobs.
type HistoryOptions struct {
	// Dir enables WAL + checkpoint persistence in this directory; empty
	// keeps history purely in-memory.
	Dir string
	// Fsync is the WAL fsync policy: "always", "interval" (default) or
	// "off". Only meaningful with Dir set.
	Fsync string
	// CheckpointInterval is the period of background history checkpoints
	// (0 = tsdb default, negative = only at shutdown).
	CheckpointInterval time.Duration
	// MaxDiskBytes budgets the history directory's size; oldest WAL
	// segments are dropped first when it is exceeded (0 = unlimited).
	MaxDiskBytes int64
}

// PushOptions groups the continuous-query (subscription) knobs.
type PushOptions struct {
	// Queue bounds each subscriber's queue (0 = router default 256).
	Queue int
	// Stall is how long a subscriber's queue may stay continuously full
	// before the subscriber is evicted (0 = router default 10s,
	// negative = never).
	Stall time.Duration
}

// FederationOptions groups the Global-layer knobs: the gateway's
// directory role and, for republishers, the cadences of the shard
// maintenance loops. The cmd binaries map their -role/-refresh/-scrape
// flags here.
type FederationOptions struct {
	// Role is the directory role to register under: "site" (default) or
	// "republisher".
	Role string
	// RefreshInterval is a republisher's directory poll / rebalance
	// cadence (0 = repub default).
	RefreshInterval time.Duration
	// ScrapeInterval is a republisher's re-scrape cadence for sites
	// without a live subscription (0 = repub default).
	ScrapeInterval time.Duration
	// VNodes is the consistent-hash ring's virtual-node count per
	// republisher (0 = ring default). Every member must agree on it.
	VNodes int
}

// Options configures a simulated site. Knobs are grouped into the
// Timeouts, History, Push and Federation sub-structs; the flat fields
// below them are deprecated aliases kept for one release — when both are
// set, the sub-struct wins.
type Options struct {
	// Name is the site name (default "site").
	Name string
	// Hosts is the host count (default 8).
	Hosts int
	// Seed seeds the simulator (default 1).
	Seed int64
	// LoadAlarm is the sim's load-high threshold (default 4.0).
	LoadAlarm float64
	// Timeouts groups the agent/harvest/query time bounds.
	Timeouts TimeoutOptions
	// History groups the durable-history knobs.
	History HistoryOptions
	// Push groups the continuous-query knobs.
	Push PushOptions
	// Federation groups the directory-role and republisher knobs.
	Federation FederationOptions
	// CoarseCacheTTL is passed to the Ganglia and NWS sources as
	// "cache_ttl" (default 1s); set negative for "0s" (off).
	CoarseCacheTTL time.Duration
	// Retry configures per-source harvest retries (zero value = no retries).
	Retry core.RetryOptions
	// Breaker configures the per-source circuit breaker (zero value = core
	// defaults; Threshold < 0 disables).
	Breaker core.BreakerOptions
	// MaxConcurrentHarvests bounds concurrent driver harvests in the
	// gateway built by NewGateway (0 = unbounded).
	MaxConcurrentHarvests int
	// DisableCoalescing turns off single-flight harvest coalescing (for
	// ablations and benchmarks).
	DisableCoalescing bool
	// StaleGrace is how long past its TTL an expired cache entry remains
	// servable as a degraded result (0 = core default, negative = off).
	StaleGrace time.Duration
	// ProbeInterval enables the background source health prober at this
	// period (0 = no background probing).
	ProbeInterval time.Duration
	// Faults, when set, wraps every bundled driver in a faultdrv
	// fault-injection layer sharing this knob set — the substrate for
	// chaos testing and the gateway's -fault-* CLI flags. Drivers keep
	// their own registration names, so schemas and static preferences
	// are unaffected.
	Faults *faultdrv.Faults
	// Trace configures the gateway's query tracer (sampling rate, trace
	// store capacity, slow-query threshold). The zero value keeps the
	// core defaults.
	Trace trace.Options

	// AgentTimeout is a deprecated alias for Timeouts.Agent.
	//
	// Deprecated: set Timeouts.Agent.
	AgentTimeout time.Duration
	// HarvestTimeout is a deprecated alias for Timeouts.Harvest.
	//
	// Deprecated: set Timeouts.Harvest.
	HarvestTimeout time.Duration
	// QueryTimeout is a deprecated alias for Timeouts.Query.
	//
	// Deprecated: set Timeouts.Query.
	QueryTimeout time.Duration
	// HistoryDir is a deprecated alias for History.Dir.
	//
	// Deprecated: set History.Dir.
	HistoryDir string
	// HistoryFsync is a deprecated alias for History.Fsync.
	//
	// Deprecated: set History.Fsync.
	HistoryFsync string
	// HistoryCheckpointInterval is a deprecated alias for
	// History.CheckpointInterval.
	//
	// Deprecated: set History.CheckpointInterval.
	HistoryCheckpointInterval time.Duration
	// HistoryMaxDiskBytes is a deprecated alias for History.MaxDiskBytes.
	//
	// Deprecated: set History.MaxDiskBytes.
	HistoryMaxDiskBytes int64
	// SubscribeQueue is a deprecated alias for Push.Queue.
	//
	// Deprecated: set Push.Queue.
	SubscribeQueue int
	// SubscribeStall is a deprecated alias for Push.Stall.
	//
	// Deprecated: set Push.Stall.
	SubscribeStall time.Duration
}

// reconcile merges the deprecated flat aliases into the sub-structs
// (sub-struct wins when both are set) and mirrors the result back onto
// the aliases so readers of either spelling agree.
func (o *Options) reconcile() {
	if o.Timeouts.Agent == 0 {
		o.Timeouts.Agent = o.AgentTimeout
	}
	if o.Timeouts.Harvest == 0 {
		o.Timeouts.Harvest = o.HarvestTimeout
	}
	if o.Timeouts.Query == 0 {
		o.Timeouts.Query = o.QueryTimeout
	}
	if o.History.Dir == "" {
		o.History.Dir = o.HistoryDir
	}
	if o.History.Fsync == "" {
		o.History.Fsync = o.HistoryFsync
	}
	if o.History.CheckpointInterval == 0 {
		o.History.CheckpointInterval = o.HistoryCheckpointInterval
	}
	if o.History.MaxDiskBytes == 0 {
		o.History.MaxDiskBytes = o.HistoryMaxDiskBytes
	}
	if o.Push.Queue == 0 {
		o.Push.Queue = o.SubscribeQueue
	}
	if o.Push.Stall == 0 {
		o.Push.Stall = o.SubscribeStall
	}
	o.AgentTimeout = o.Timeouts.Agent
	o.HarvestTimeout = o.Timeouts.Harvest
	o.QueryTimeout = o.Timeouts.Query
	o.HistoryDir = o.History.Dir
	o.HistoryFsync = o.History.Fsync
	o.HistoryCheckpointInterval = o.History.CheckpointInterval
	o.HistoryMaxDiskBytes = o.History.MaxDiskBytes
	o.SubscribeQueue = o.Push.Queue
	o.SubscribeStall = o.Push.Stall
}

// CoreConfig maps the gateway-relevant options onto a core.Config for the
// given site name. NewGateway and the cmd binaries use this so every knob
// flows through one translation instead of ad-hoc field copying.
func (o Options) CoreConfig(name string) core.Config {
	o.reconcile()
	return core.Config{
		Name:                  name,
		HarvestTimeout:        o.Timeouts.Harvest,
		QueryTimeout:          o.Timeouts.Query,
		Retry:                 o.Retry,
		Breaker:               o.Breaker,
		MaxConcurrentHarvests: o.MaxConcurrentHarvests,
		DisableCoalescing:     o.DisableCoalescing,
		StaleGrace:            o.StaleGrace,
		Probe:                 health.Options{Interval: o.ProbeInterval},
		Trace:                 o.Trace,
		Push:                  router.Options{QueueSize: o.Push.Queue, Stall: o.Push.Stall},
		Durable: tsdb.Options{
			Dir:                o.History.Dir,
			Fsync:              o.History.Fsync,
			CheckpointInterval: o.History.CheckpointInterval,
			MaxDiskBytes:       o.History.MaxDiskBytes,
		},
	}
}

func (o *Options) fill() {
	o.reconcile()
	if o.Name == "" {
		o.Name = "site"
	}
	if o.Hosts <= 0 {
		o.Hosts = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeouts.Agent <= 0 {
		o.Timeouts.Agent = 2 * time.Second
	}
	o.AgentTimeout = o.Timeouts.Agent
	if o.CoarseCacheTTL == 0 {
		o.CoarseCacheTTL = time.Second
	}
	if o.Federation.Role == "" {
		o.Federation.Role = "site"
	}
}

// Site is a running simulated site with all five agents.
type Site struct {
	Opts Options
	Sim  *sim.Site
	SNMP []*snmp.Agent
	Gmon *ganglia.Agent
	NWS  *nws.Agent
	NL   *netlogger.Agent
	SCMS *scms.Agent

	mu         sync.Mutex
	tickerStop chan struct{}
	tickerDone chan struct{}
}

// Start launches a site and its agents on ephemeral localhost ports.
func Start(opts Options) (*Site, error) {
	opts.fill()
	s := &Site{
		Opts: opts,
		Sim: sim.New(sim.Config{Name: opts.Name, Hosts: opts.Hosts,
			Seed: opts.Seed, LoadAlarm: opts.LoadAlarm}),
	}
	s.Sim.StepN(3) // settle dynamics
	for _, host := range s.Sim.HostNames() {
		a, err := snmp.NewAgent(s.Sim, snmp.AgentConfig{Host: host})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.SNMP = append(s.SNMP, a)
	}
	var err error
	if s.Gmon, err = ganglia.NewAgent(s.Sim, ""); err != nil {
		s.Close()
		return nil, err
	}
	if s.NWS, err = nws.NewAgent(s.Sim, ""); err != nil {
		s.Close()
		return nil, err
	}
	if s.NL, err = netlogger.NewAgent(s.Sim, ""); err != nil {
		s.Close()
		return nil, err
	}
	if s.SCMS, err = scms.NewAgent(s.Sim, ""); err != nil {
		s.Close()
		return nil, err
	}
	s.Sample()
	return s, nil
}

// Close stops the ticker (if running) and all agents.
func (s *Site) Close() {
	s.StopTicker()
	for _, a := range s.SNMP {
		_ = a.Close()
	}
	if s.Gmon != nil {
		_ = s.Gmon.Close()
	}
	if s.NWS != nil {
		_ = s.NWS.Close()
	}
	if s.NL != nil {
		_ = s.NL.Close()
	}
	if s.SCMS != nil {
		_ = s.SCMS.Close()
	}
}

// Sample records one NWS and NetLogger measurement round at the current
// simulator state.
func (s *Site) Sample() {
	s.NWS.Sample()
	s.NL.Sample()
}

// Step advances the simulation n ticks and samples once at the end.
func (s *Site) Step(n int) {
	s.Sim.StepN(n)
	s.Sample()
}

// StartTicker advances the simulation every interval until StopTicker.
func (s *Site) StartTicker(interval time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tickerStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.tickerStop, s.tickerDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Step(1)
			case <-stop:
				return
			}
		}
	}()
}

// StopTicker halts a running ticker.
func (s *Site) StopTicker() {
	s.mu.Lock()
	stop, done := s.tickerStop, s.tickerDone
	s.tickerStop, s.tickerDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Manifest describes a running site's agent endpoints; gridrm-agents
// prints it and gridrm-gateway consumes it.
type Manifest struct {
	Site      string   `json:"site"`
	Hosts     []string `json:"hosts"`
	SNMP      []string `json:"snmp"`
	Ganglia   string   `json:"ganglia"`
	NWS       string   `json:"nws"`
	NetLogger string   `json:"netlogger"`
	SCMS      string   `json:"scms"`
}

// Manifest returns the site's endpoint manifest.
func (s *Site) Manifest() Manifest {
	m := Manifest{
		Site:      s.Opts.Name,
		Hosts:     s.Sim.HostNames(),
		Ganglia:   s.Gmon.Addr(),
		NWS:       s.NWS.Addr(),
		NetLogger: s.NL.Addr(),
		SCMS:      s.SCMS.Addr(),
	}
	for _, a := range s.SNMP {
		m.SNMP = append(m.SNMP, a.Addr())
	}
	return m
}

// MarshalManifest renders a manifest as indented JSON.
func MarshalManifest(m Manifest) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// ParseManifest parses manifest JSON.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("sitekit: %w", err)
	}
	return m, nil
}

// SourceConfigs builds gateway source registrations for every agent in a
// manifest. Static driver preferences are installed so the gateway need
// not probe; pass dynamic=true to omit them and exercise dynamic driver
// location instead.
func SourceConfigs(m Manifest, opts Options, dynamic bool) []core.SourceConfig {
	opts.fill()
	timeout := opts.AgentTimeout.String()
	coarseTTL := opts.CoarseCacheTTL.String()
	if opts.CoarseCacheTTL < 0 {
		coarseTTL = "0s"
	}
	pref := func(name string) []string {
		if dynamic {
			return nil
		}
		return []string{name}
	}
	var out []core.SourceConfig
	for i, addr := range m.SNMP {
		host := ""
		if i < len(m.Hosts) {
			host = m.Hosts[i]
		}
		out = append(out, core.SourceConfig{
			URL:         driver.FormatURL("snmp", hostPart(addr), portPart(addr), ""),
			Props:       driver.Properties{"timeout": timeout},
			Drivers:     pref(snmpdrv.DriverName),
			Description: "SNMP agent on " + host,
		})
	}
	out = append(out, core.SourceConfig{
		URL:         driver.FormatURL("ganglia", hostPart(m.Ganglia), portPart(m.Ganglia), ""),
		Props:       driver.Properties{"timeout": timeout, "cache_ttl": coarseTTL},
		Drivers:     pref(gangliadrv.DriverName),
		Description: "Ganglia gmond for " + m.Site,
	})
	out = append(out, core.SourceConfig{
		URL:         driver.FormatURL("nws", hostPart(m.NWS), portPart(m.NWS), ""),
		Props:       driver.Properties{"timeout": timeout, "cache_ttl": coarseTTL},
		Drivers:     pref(nwsdrv.DriverName),
		Description: "NWS nameserver for " + m.Site,
	})
	out = append(out, core.SourceConfig{
		URL:         driver.FormatURL("netlogger", hostPart(m.NetLogger), portPart(m.NetLogger), ""),
		Props:       driver.Properties{"timeout": timeout},
		Drivers:     pref(netloggerdrv.DriverName),
		Description: "NetLogger collector for " + m.Site,
	})
	out = append(out, core.SourceConfig{
		URL:         driver.FormatURL("scms", hostPart(m.SCMS), portPart(m.SCMS), ""),
		Props:       driver.Properties{"timeout": timeout},
		Drivers:     pref(scmsdrv.DriverName),
		Description: "SCMS daemon for " + m.Site,
	})
	return out
}

func hostPart(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}

func portPart(addr string) int {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			port := 0
			if _, err := fmt.Sscanf(addr[i+1:], "%d", &port); err != nil {
				return 0
			}
			return port
		}
	}
	return 0
}

// RegisterDrivers installs the full bundled driver set (the paper's initial
// set of §3.2.3 plus the historical-store driver) into a gateway.
func RegisterDrivers(gw *core.Gateway) error {
	return registerDrivers(gw, nil)
}

// registerDrivers installs the bundled drivers, each wrapped in a
// fault-injection layer (under its own name, so schemas still match) when
// faults is non-nil.
func registerDrivers(gw *core.Gateway, faults *faultdrv.Faults) error {
	sm := gw.SchemaManager()
	wrap := func(d driver.Driver) driver.Driver {
		if faults == nil {
			return d
		}
		return faultdrv.New(d.Name(), d, faults)
	}
	if err := gw.RegisterDriver(wrap(snmpdrv.New(sm)), snmpdrv.Schema()); err != nil {
		return err
	}
	if err := gw.RegisterDriver(wrap(gangliadrv.New(sm)), gangliadrv.Schema()); err != nil {
		return err
	}
	if err := gw.RegisterDriver(wrap(nwsdrv.New(sm)), nwsdrv.Schema()); err != nil {
		return err
	}
	if err := gw.RegisterDriver(wrap(netloggerdrv.New(sm)), netloggerdrv.Schema()); err != nil {
		return err
	}
	if err := gw.RegisterDriver(wrap(scmsdrv.New(sm)), scmsdrv.Schema()); err != nil {
		return err
	}
	if err := gw.RegisterDriver(histdrv.New(gw.HistoryStore()), histdrv.Schema()); err != nil {
		return err
	}
	if err := gw.RegisterDriver(gatewaydrv.New(sm), gatewaydrv.Schema()); err != nil {
		return err
	}
	return nil
}

// NewGateway creates a gateway named after the site with every bundled
// driver registered and every agent of the manifest added as a source.
func NewGateway(m Manifest, opts Options, dynamic bool) (*core.Gateway, error) {
	gw := core.New(opts.CoreConfig(m.Site))
	if err := registerDrivers(gw, opts.Faults); err != nil {
		gw.Close()
		return nil, err
	}
	for _, cfg := range SourceConfigs(m, opts, dynamic) {
		if err := gw.AddSource(cfg); err != nil {
			gw.Close()
			return nil, err
		}
	}
	return gw, nil
}
