package driver

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// FailureAction says what the Manager does when the preferred or cached
// driver for a source cannot connect (paper §3.1.3/§4: "retry the driver,
// try another, report the error" — retrying is the Policy.Retries knob, and
// this action picks between the remaining two).
type FailureAction int

const (
	// TryNext falls back to dynamic selection across the remaining
	// registered drivers.
	TryNext FailureAction = iota
	// Report surfaces the connection failure to the caller immediately.
	Report
)

// String returns the action name.
func (a FailureAction) String() string {
	if a == Report {
		return "report"
	}
	return "try-next"
}

// Policy configures driver-to-resource allocation failure handling.
type Policy struct {
	// Retries is how many additional attempts each selected driver gets
	// before it is considered failed for this request.
	Retries int
	// OnFailure selects the follow-up when the preferred/cached driver
	// is exhausted.
	OnFailure FailureAction
}

// Stats counts Manager activity; all fields are cumulative. Benchmarks E2
// read these to report scan cost and cache effectiveness.
type Stats struct {
	// Registrations counts successful RegisterDriver calls.
	Registrations int64
	// Scans counts dynamic driver-location scans.
	Scans int64
	// ScanProbes counts AcceptsURL probes performed during scans.
	ScanProbes int64
	// CacheHits counts connects satisfied by the last-good driver cache.
	CacheHits int64
	// CacheMisses counts connects that had no usable cache entry.
	CacheMisses int64
	// Connects counts successful driver connects.
	Connects int64
	// ConnectFailures counts failed driver connect attempts.
	ConnectFailures int64
	// Failovers counts times a preferred/cached driver was abandoned for
	// dynamic selection.
	Failovers int64
}

type statsCounters struct {
	registrations, scans, scanProbes     atomic.Int64
	cacheHits, cacheMisses               atomic.Int64
	connects, connectFailures, failovers atomic.Int64
}

func (c *statsCounters) snapshot() Stats {
	return Stats{
		Registrations:   c.registrations.Load(),
		Scans:           c.scans.Load(),
		ScanProbes:      c.scanProbes.Load(),
		CacheHits:       c.cacheHits.Load(),
		CacheMisses:     c.cacheMisses.Load(),
		Connects:        c.connects.Load(),
		ConnectFailures: c.connectFailures.Load(),
		Failovers:       c.failovers.Load(),
	}
}

// Manager is the GridRMDriverManager (paper §3.1.3): it registers and
// un-registers resource drivers and performs driver-to-resource allocation,
// statically (user preferences), dynamically (AcceptsURL scan, Table 2), or
// via a cache of the driver last successfully used for a data source.
// Drivers can be added and removed at runtime without affecting normal
// operation; all methods are safe for concurrent use.
type Manager struct {
	mu       sync.RWMutex
	drivers  []Driver // registration order, scanned in order like Table 2
	byName   map[string]Driver
	prefs    map[string][]string
	lastGood map[string]string
	policy   Policy
	caching  bool
	stats    statsCounters
}

// NewManager returns an empty Manager with last-good caching enabled and a
// zero-retry TryNext policy.
func NewManager() *Manager {
	return &Manager{
		byName:   make(map[string]Driver),
		prefs:    make(map[string][]string),
		lastGood: make(map[string]string),
		policy:   Policy{Retries: 0, OnFailure: TryNext},
		caching:  true,
	}
}

// RegisterDriver adds a driver. Registering a name twice is an error; the
// registration component stays generic by never referencing concrete driver
// types (paper Table 1).
func (m *Manager) RegisterDriver(d Driver) error {
	if d == nil || d.Name() == "" {
		return fmt.Errorf("driver: cannot register unnamed driver")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.byName[d.Name()]; dup {
		return fmt.Errorf("driver: %q already registered", d.Name())
	}
	m.byName[d.Name()] = d
	m.drivers = append(m.drivers, d)
	m.stats.registrations.Add(1)
	return nil
}

// DeregisterDriver removes a driver at runtime; cached selections that point
// at it are invalidated.
func (m *Manager) DeregisterDriver(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byName[name]; !ok {
		return fmt.Errorf("driver: %q not registered", name)
	}
	delete(m.byName, name)
	for i, d := range m.drivers {
		if d.Name() == name {
			m.drivers = append(m.drivers[:i], m.drivers[i+1:]...)
			break
		}
	}
	for url, cached := range m.lastGood {
		if cached == name {
			delete(m.lastGood, url)
		}
	}
	return nil
}

// Drivers returns the names of registered drivers in registration order.
func (m *Manager) Drivers() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, len(m.drivers))
	for i, d := range m.drivers {
		names[i] = d.Name()
	}
	return names
}

// Driver returns the registered driver with the given name.
func (m *Manager) Driver(name string) (Driver, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.byName[name]
	return d, ok
}

// SetPreferences registers an ordered driver preference list for a
// data-source URL (paper §4, Fig 8: "register a number of drivers to be
// used in prioritised order"). An empty list clears the preference.
func (m *Manager) SetPreferences(url string, driverNames []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(driverNames) == 0 {
		delete(m.prefs, url)
		return
	}
	m.prefs[url] = append([]string(nil), driverNames...)
}

// Preferences returns the preference list registered for a URL, if any.
func (m *Manager) Preferences(url string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.prefs[url]...)
}

// SetPolicy configures failure handling for subsequent Connect calls.
func (m *Manager) SetPolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p.Retries < 0 {
		p.Retries = 0
	}
	m.policy = p
}

// SetCaching enables or disables the last-good driver cache; disabling also
// clears it. Used by the E2 ablation.
func (m *Manager) SetCaching(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.caching = on
	if !on {
		m.lastGood = make(map[string]string)
	}
}

// ClearCache drops all last-good cache entries.
func (m *Manager) ClearCache() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastGood = make(map[string]string)
}

// CachedDriver returns the last-good driver name cached for a URL, if any.
func (m *Manager) CachedDriver(url string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	name, ok := m.lastGood[url]
	return name, ok
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats { return m.stats.snapshot() }

// ResetStats zeroes the counters (benchmark support).
func (m *Manager) ResetStats() { m.stats = statsCounters{} }

// Connect allocates a driver for the data source and opens a connection,
// applying static preferences, the last-good cache, and dynamic selection
// in that order, under the configured failure policy.
func (m *Manager) Connect(url string, props Properties) (Conn, error) {
	if _, err := ParseURL(url); err != nil {
		return nil, err
	}

	m.mu.RLock()
	prefs := m.prefs[url]
	cached, hasCached := "", false
	if m.caching {
		cached, hasCached = m.lastGood[url]
	}
	policy := m.policy
	m.mu.RUnlock()

	var firstErr error

	// 1. Static preferences, in priority order.
	if len(prefs) > 0 {
		for _, name := range prefs {
			d, ok := m.Driver(name)
			if !ok {
				continue
			}
			conn, err := m.tryConnect(d, url, props, policy.Retries)
			if err == nil {
				m.remember(url, d.Name())
				return conn, nil
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		if policy.OnFailure == Report {
			return nil, fmt.Errorf("driver: preferred drivers for %s failed: %w", url, firstErr)
		}
		m.stats.failovers.Add(1)
		return m.dynamicConnect(url, props, policy.Retries, firstErr)
	}

	// 2. Last-good cache.
	if hasCached {
		if d, ok := m.Driver(cached); ok {
			conn, err := m.tryConnect(d, url, props, policy.Retries)
			if err == nil {
				m.stats.cacheHits.Add(1)
				return conn, nil
			}
			firstErr = err
			// Configuration rules determine what happens when a cached
			// driver reference is no longer valid (§3.1.3).
			if policy.OnFailure == Report {
				m.forget(url)
				return nil, fmt.Errorf("driver: cached driver %s for %s failed: %w", cached, url, err)
			}
			m.forget(url)
			m.stats.failovers.Add(1)
		}
	}
	m.stats.cacheMisses.Add(1)

	// 3. Dynamic location.
	return m.dynamicConnect(url, props, policy.Retries, firstErr)
}

// LocateDriver performs only the dynamic AcceptsURL scan (paper Table 2)
// without connecting, returning the first registered driver that accepts
// the URL.
func (m *Manager) LocateDriver(url string) (Driver, error) {
	m.mu.RLock()
	drivers := append([]Driver(nil), m.drivers...)
	m.mu.RUnlock()
	m.stats.scans.Add(1)
	for _, d := range drivers {
		m.stats.scanProbes.Add(1)
		if SafeAccepts(d, url) {
			return d, nil
		}
	}
	return nil, fmt.Errorf("%w for %s", ErrNoDriver, url)
}

func (m *Manager) dynamicConnect(url string, props Properties, retries int, prevErr error) (Conn, error) {
	m.mu.RLock()
	drivers := append([]Driver(nil), m.drivers...)
	m.mu.RUnlock()
	m.stats.scans.Add(1)
	firstErr := prevErr
	// Iterate the registered drivers: the first that accepts the URL AND
	// can connect to the data source is used (Table 2).
	for _, d := range drivers {
		m.stats.scanProbes.Add(1)
		if !SafeAccepts(d, url) {
			continue
		}
		conn, err := m.tryConnect(d, url, props, retries)
		if err == nil {
			m.remember(url, d.Name())
			return conn, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("driver: all drivers failed for %s: %w", url, firstErr)
	}
	return nil, fmt.Errorf("%w for %s", ErrNoDriver, url)
}

func (m *Manager) tryConnect(d Driver, url string, props Properties, retries int) (Conn, error) {
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		var conn Conn
		conn, err = SafeConnect(d, url, props)
		if err == nil {
			m.stats.connects.Add(1)
			return conn, nil
		}
		m.stats.connectFailures.Add(1)
	}
	return nil, fmt.Errorf("driver %s: %w", d.Name(), err)
}

func (m *Manager) remember(url, driverName string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.caching {
		m.lastGood[url] = driverName
	}
}

func (m *Manager) forget(url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.lastGood, url)
}
