package driver

import (
	"gridrm/internal/resultset"
)

// UnimplementedConn reproduces the paper's incremental driver-development
// pattern (§3.2.1): every method fails with ErrNotImplemented, "as one would
// expect from a fully implemented driver that had experienced errors while
// attempting to retrieve the required data". Concrete driver connections
// embed UnimplementedConn and override only the methods they support; the
// rest of the API surface stays callable and fails uniformly rather than
// being a compile-time hole.
type UnimplementedConn struct{}

// CreateStatement implements Conn by failing with ErrNotImplemented.
func (UnimplementedConn) CreateStatement() (Stmt, error) { return nil, ErrNotImplemented }

// Close implements Conn as a no-op; even minimal drivers should be safe to
// close.
func (UnimplementedConn) Close() error { return nil }

// Ping implements Conn by failing with ErrNotImplemented.
func (UnimplementedConn) Ping() error { return ErrNotImplemented }

// URL implements Conn by returning the empty string.
func (UnimplementedConn) URL() string { return "" }

// Driver implements Conn by returning the empty string.
func (UnimplementedConn) Driver() string { return "" }

// SourceInfo implements MetadataProvider with an empty description.
func (UnimplementedConn) SourceInfo() SourceInfo { return SourceInfo{} }

// UnimplementedStmt is the statement-side super-class of the incremental
// pattern; see UnimplementedConn.
type UnimplementedStmt struct{}

// ExecuteQuery implements Stmt by failing with ErrNotImplemented.
func (UnimplementedStmt) ExecuteQuery(string) (*resultset.ResultSet, error) {
	return nil, ErrNotImplemented
}

// Close implements Stmt as a no-op.
func (UnimplementedStmt) Close() error { return nil }

// SetMaxRows implements MaxRowsSetter by failing with ErrNotImplemented.
func (UnimplementedStmt) SetMaxRows(int) error { return ErrNotImplemented }

var (
	_ Conn             = UnimplementedConn{}
	_ MetadataProvider = UnimplementedConn{}
	_ Stmt             = UnimplementedStmt{}
	_ MaxRowsSetter    = UnimplementedStmt{}
)
