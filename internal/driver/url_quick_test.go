package driver

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestURLFormatParseRoundTrip checks FormatURL/ParseURL are inverses for
// every well-formed input.
func TestURLFormatParseRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
				return r
			}
			return 'x'
		}, strings.ToLower(s))
		if s == "" {
			s = "h"
		}
		if len(s) > 32 {
			s = s[:32]
		}
		return s
	}
	f := func(proto, host, path string, port uint16) bool {
		p := sanitize(proto)
		h := sanitize(host)
		pa := sanitize(path)
		prt := int(port%65535) + 1
		raw := FormatURL(p, h, prt, pa)
		u, err := ParseURL(raw)
		if err != nil {
			t.Logf("ParseURL(%q): %v", raw, err)
			return false
		}
		return u.Protocol == p && u.Host == h && u.Port == prt && u.Path == pa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseURLNeverPanics fuzzes the parser with arbitrary strings.
func TestParseURLNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("ParseURL(%q) panicked: %v", s, r)
			}
		}()
		u, err := ParseURL("gridrm:" + s)
		if err == nil && u.Host == "" {
			t.Errorf("ParseURL accepted empty host for %q", s)
		}
		_, _ = ParseURL(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
