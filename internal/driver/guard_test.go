package driver

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gridrm/internal/resultset"
)

// panicDriver panics at whichever boundary the test arms.
type panicDriver struct {
	inConnect bool
	inAccepts bool
	inQuery   bool
	inPing    bool
	inClose   bool
	ctxAware  bool
}

func (d *panicDriver) Name() string { return "panicdrv" }

func (d *panicDriver) AcceptsURL(url string) bool {
	if d.inAccepts {
		panic("accepts exploded")
	}
	return true
}

func (d *panicDriver) Connect(url string, props Properties) (Conn, error) {
	if d.inConnect {
		panic("connect exploded")
	}
	return &panicConn{d: d, url: url}, nil
}

type panicConn struct {
	UnimplementedConn
	d   *panicDriver
	url string
}

func (c *panicConn) URL() string    { return c.url }
func (c *panicConn) Driver() string { return "panicdrv" }
func (c *panicConn) Ping() error {
	if c.d.inPing {
		panic("ping exploded")
	}
	return nil
}
func (c *panicConn) Close() error {
	if c.d.inClose {
		panic("close exploded")
	}
	return nil
}
func (c *panicConn) CreateStatement() (Stmt, error) {
	if c.d.ctxAware {
		return &panicCtxStmt{panicStmt{d: c.d}}, nil
	}
	return &panicStmt{d: c.d}, nil
}

type panicStmt struct {
	UnimplementedStmt
	d *panicDriver
}

func (s *panicStmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	if s.d.inQuery {
		panic("query exploded")
	}
	return nil, errors.New("no data")
}

type panicCtxStmt struct{ panicStmt }

func (s *panicCtxStmt) ExecuteQueryContext(ctx context.Context, sql string) (*resultset.ResultSet, error) {
	return s.ExecuteQuery(sql)
}

func wantPanicError(t *testing.T, err error, op, payload string) {
	t.Helper()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Op != op {
		t.Errorf("Op = %q, want %q", pe.Op, op)
	}
	if got := pe.Value.(string); got != payload {
		t.Errorf("Value = %q, want %q", got, payload)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(pe.Error(), payload) {
		t.Errorf("Error() = %q, missing payload", pe.Error())
	}
}

func TestSafeConnectContainsPanic(t *testing.T) {
	d := &panicDriver{inConnect: true}
	conn, err := SafeConnect(d, "gridrm:x://h:1", nil)
	if conn != nil {
		t.Error("panicking connect returned a conn")
	}
	wantPanicError(t, err, "connect", "connect exploded")
}

func TestSafeAcceptsContainsPanic(t *testing.T) {
	d := &panicDriver{inAccepts: true}
	if SafeAccepts(d, "gridrm:x://h:1") {
		t.Error("panicking AcceptsURL claimed the URL")
	}
}

func TestSafePingAndCloseContainPanics(t *testing.T) {
	d := &panicDriver{inPing: true, inClose: true}
	conn, err := SafeConnect(d, "gridrm:x://h:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPanicError(t, SafePing(conn), "ping", "ping exploded")
	wantPanicError(t, SafeClose(conn), "close", "close exploded")
}

func TestQueryContextContainsPanicBothPaths(t *testing.T) {
	for _, ctxAware := range []bool{true, false} {
		name := "legacy shim"
		if ctxAware {
			name = "context-aware"
		}
		t.Run(name, func(t *testing.T) {
			d := &panicDriver{inQuery: true, ctxAware: ctxAware}
			conn, err := SafeConnect(d, "gridrm:x://h:1", nil)
			if err != nil {
				t.Fatal(err)
			}
			stmt, err := SafeCreateStatement(conn)
			if err != nil {
				t.Fatal(err)
			}
			// The legacy path only spawns the shim goroutine under a
			// deadline; give it one so the panic fires inside the shim.
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			rs, err := QueryContext(ctx, stmt, "SELECT * FROM Processor")
			if rs != nil {
				t.Error("panicking query returned rows")
			}
			wantPanicError(t, err, "query", "query exploded")
		})
	}
}

func TestQueryContextNoDeadlineContainsPanic(t *testing.T) {
	d := &panicDriver{inQuery: true}
	conn, _ := SafeConnect(d, "gridrm:x://h:1", nil)
	stmt, _ := SafeCreateStatement(conn)
	rs, err := QueryContext(context.Background(), stmt, "SELECT * FROM Processor")
	if rs != nil {
		t.Error("panicking query returned rows")
	}
	wantPanicError(t, err, "query", "query exploded")
}
