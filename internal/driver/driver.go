// Package driver defines GridRM's pluggable data-source driver contract and
// the GridRMDriverManager that registers drivers and allocates them to
// resources (paper §3.1.3 and §3.2).
//
// The contract mirrors the JDBC surface the paper builds on:
//
//	Driver      ≈ java.sql.Driver      (AcceptsURL, Connect)
//	Conn        ≈ java.sql.Connection  (session with a data source)
//	Stmt        ≈ java.sql.Statement   (SQL in, ResultSet out)
//	ResultSet   ≈ javax.sql.ResultSet  (see internal/resultset)
//
// The paper's incremental-implementation idiom — JDBC interfaces stubbed to
// throw SQLException, used as super-classes so partial drivers behave like
// full drivers that failed — is reproduced by the Unimplemented* types in
// base.go, which every bundled driver embeds.
package driver

import (
	"errors"
	"fmt"
	"strings"

	"gridrm/internal/resultset"
)

// ErrNotImplemented is the analogue of the SQLException the paper's stubbed
// JDBC methods throw: calling a driver method the implementation has not
// provided yields this error, exactly as one would expect "from a fully
// implemented driver that had experienced errors" (§3.2.1).
var ErrNotImplemented = errors.New("driver: method not implemented")

// ErrBadURL reports a malformed GridRM data-source URL.
var ErrBadURL = errors.New("driver: malformed data source URL")

// ErrNoDriver reports that no registered driver accepts a URL.
var ErrNoDriver = errors.New("driver: no suitable driver")

// ErrClosed reports use of a closed connection or statement.
var ErrClosed = errors.New("driver: closed")

// Properties carries per-connection options (community strings, timeouts,
// cache TTLs ...), the analogue of JDBC's java.util.Properties.
type Properties map[string]string

// Get returns the property value or def when absent.
func (p Properties) Get(key, def string) string {
	if p == nil {
		return def
	}
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Clone returns a copy of the properties (nil stays nil).
func (p Properties) Clone() Properties {
	if p == nil {
		return nil
	}
	out := make(Properties, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Driver is implemented by every data-source plug-in.
type Driver interface {
	// Name returns the driver's registration name, e.g. "jdbc-snmp".
	Name() string
	// AcceptsURL reports whether the driver believes it can operate with
	// the data source named by the URL. Like the paper's Table 2 scan,
	// this is a cheap syntactic check; Connect may still fail.
	AcceptsURL(url string) bool
	// Connect opens a session with the data source.
	Connect(url string, props Properties) (Conn, error)
}

// Versioned is optionally implemented by drivers that report a version.
type Versioned interface {
	Version() string
}

// Conn is a session with one data source (≈ java.sql.Connection).
type Conn interface {
	// CreateStatement returns a statement for executing queries. Per the
	// paper (Fig 5), schema mapping metadata is typically cached when the
	// connection is created and consulted by statements.
	CreateStatement() (Stmt, error)
	// Close releases the session.
	Close() error
	// Ping verifies the data source is still reachable; pooled
	// connections are validated with Ping before reuse.
	Ping() error
	// URL returns the data-source URL the connection was opened with.
	URL() string
	// Driver returns the name of the driver that produced the connection.
	Driver() string
}

// Stmt executes SQL against a data source (≈ java.sql.Statement).
type Stmt interface {
	// ExecuteQuery translates the SQL query to the source's native
	// protocol, performs the retrieval, and populates a ResultSet whose
	// columns conform to the GLUE naming schema.
	ExecuteQuery(sql string) (*resultset.ResultSet, error)
	// Close releases the statement.
	Close() error
}

// MaxRowsSetter is optionally implemented by statements that honour a row
// cap (≈ java.sql.Statement#setMaxRows).
type MaxRowsSetter interface {
	SetMaxRows(n int) error
}

// MetadataProvider is optionally implemented by connections that expose
// data-source metadata (≈ java.sql.DatabaseMetaData).
type MetadataProvider interface {
	// SourceInfo describes the agent behind the connection.
	SourceInfo() SourceInfo
}

// SourceInfo describes a connected data source.
type SourceInfo struct {
	// Protocol is the native protocol name ("snmp", "ganglia", ...).
	Protocol string
	// AgentVersion is the remote agent's self-reported version.
	AgentVersion string
	// Groups lists the GLUE groups the driver can answer for this source.
	Groups []string
}

// URL is the parsed form of a GridRM data-source URL:
//
//	gridrm:[protocol]://host[:port][/path]
//
// An empty protocol ("gridrm://...") asks the DriverManager to locate any
// compatible driver dynamically; a named protocol ("gridrm:nws://...")
// guides selection, mirroring the paper's jdbc:nws://snowboard.workgroup
// example (§3.2.2).
type URL struct {
	// Protocol is the requested driver protocol; empty means "any".
	Protocol string
	// Host is the agent host name or address.
	Host string
	// Port is the agent port; zero means the driver default.
	Port int
	// Path is the remainder after host:port, without the leading slash.
	Path string
	raw  string
}

// String returns the original URL text.
func (u *URL) String() string { return u.raw }

// Address returns "host:port" with the given default port when the URL
// does not carry one.
func (u *URL) Address(defaultPort int) string {
	port := u.Port
	if port == 0 {
		port = defaultPort
	}
	return fmt.Sprintf("%s:%d", u.Host, port)
}

// ParseURL parses a GridRM data-source URL.
func ParseURL(raw string) (*URL, error) {
	rest, ok := strings.CutPrefix(raw, "gridrm:")
	if !ok {
		return nil, fmt.Errorf("%w: %q must start with gridrm:", ErrBadURL, raw)
	}
	u := &URL{raw: raw}
	if i := strings.Index(rest, "//"); i >= 0 {
		u.Protocol = rest[:i]
		rest = rest[i+2:]
	} else {
		return nil, fmt.Errorf("%w: %q missing //", ErrBadURL, raw)
	}
	u.Protocol = strings.TrimSuffix(strings.ToLower(u.Protocol), ":")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		u.Path = rest[i+1:]
		rest = rest[:i]
	}
	if rest == "" {
		return nil, fmt.Errorf("%w: %q has no host", ErrBadURL, raw)
	}
	host := rest
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		host = rest[:i]
		var port int
		if _, err := fmt.Sscanf(rest[i+1:], "%d", &port); err != nil || port <= 0 || port > 65535 {
			return nil, fmt.Errorf("%w: %q has bad port", ErrBadURL, raw)
		}
		u.Port = port
	}
	if host == "" {
		return nil, fmt.Errorf("%w: %q has empty host", ErrBadURL, raw)
	}
	u.Host = host
	return u, nil
}

// FormatURL builds a GridRM URL string from parts; protocol may be empty.
func FormatURL(protocol, host string, port int, path string) string {
	var sb strings.Builder
	sb.WriteString("gridrm:")
	if protocol != "" {
		sb.WriteString(protocol)
		sb.WriteString(":")
	}
	sb.WriteString("//")
	sb.WriteString(host)
	if port > 0 {
		fmt.Fprintf(&sb, ":%d", port)
	}
	if path != "" {
		sb.WriteByte('/')
		sb.WriteString(strings.TrimPrefix(path, "/"))
	}
	return sb.String()
}
