package driver

import (
	"context"

	"gridrm/internal/resultset"
)

// StmtContext is optionally implemented by statements that honour context
// deadlines and cancellation natively, the analogue of JDBC's query-timeout
// support. Drivers that translate queries into network protocols should
// implement it so a cancelled query stops consuming agent and gateway
// resources immediately.
type StmtContext interface {
	// ExecuteQueryContext behaves like Stmt.ExecuteQuery but returns
	// promptly with ctx.Err() once ctx is cancelled or its deadline
	// passes.
	ExecuteQueryContext(ctx context.Context, sql string) (*resultset.ResultSet, error)
}

// QueryContext executes sql on stmt, honouring ctx. Context-aware
// statements (StmtContext) receive ctx directly. Other statements keep the
// paper's incremental-driver idiom: the blocking ExecuteQuery runs in a
// goroutine and the call returns ctx.Err() on expiry, so a partial or hung
// driver behaves like a fully implemented driver that failed. The shim
// goroutine runs until the driver call returns — callers must treat the
// connection as tainted (Discard, never Release) after a timeout, since the
// driver may still be using it.
//
// Both paths run the driver call behind recover(): a panicking driver
// yields a *PanicError instead of killing the process. The recovery for
// the legacy path happens inside the shim goroutine itself, where the
// gateway's own defers cannot reach.
func QueryContext(ctx context.Context, stmt Stmt, sql string) (*resultset.ResultSet, error) {
	if sc, ok := stmt.(StmtContext); ok {
		return safeExecuteContext(ctx, sc, sql)
	}
	if ctx.Done() == nil {
		return safeExecute(stmt, sql)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type result struct {
		rs  *resultset.ResultSet
		err error
	}
	ch := make(chan result, 1)
	go func() {
		rs, err := safeExecute(stmt, sql)
		ch <- result{rs, err}
	}()
	select {
	case r := <-ch:
		return r.rs, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
