package driver

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gridrm/internal/resultset"
)

// fakeDriver accepts URLs whose protocol matches proto (or any URL when
// proto is "*"), and fails to connect after failAfter successful connects
// when failAfter >= 0.
type fakeDriver struct {
	name     string
	proto    string
	mu       sync.Mutex
	connects int
	fail     bool
}

func (d *fakeDriver) Name() string { return d.name }

func (d *fakeDriver) AcceptsURL(url string) bool {
	u, err := ParseURL(url)
	if err != nil {
		return false
	}
	if d.proto == "*" {
		return true
	}
	return u.Protocol == "" || u.Protocol == d.proto
}

func (d *fakeDriver) Connect(url string, props Properties) (Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fail {
		return nil, fmt.Errorf("%s: agent unreachable", d.name)
	}
	d.connects++
	return &fakeConn{UnimplementedConn: UnimplementedConn{}, url: url, driver: d.name}, nil
}

func (d *fakeDriver) setFail(fail bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fail = fail
}

func (d *fakeDriver) connectCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.connects
}

type fakeConn struct {
	UnimplementedConn
	url    string
	driver string
}

func (c *fakeConn) URL() string    { return c.url }
func (c *fakeConn) Driver() string { return c.driver }
func (c *fakeConn) Ping() error    { return nil }

func TestParseURL(t *testing.T) {
	cases := []struct {
		raw   string
		proto string
		host  string
		port  int
		path  string
		ok    bool
	}{
		{"gridrm:snmp://node1:1161/public", "snmp", "node1", 1161, "public", true},
		{"gridrm://snowboard.workgroup/perfdata", "", "snowboard.workgroup", 0, "perfdata", true},
		{"gridrm:nws://snowboard.workgroup/perfdata", "nws", "snowboard.workgroup", 0, "perfdata", true},
		{"gridrm:ganglia://10.0.0.1:8649", "ganglia", "10.0.0.1", 8649, "", true},
		{"gridrm:SNMP://Node1", "snmp", "Node1", 0, "", true},
		{"jdbc:snmp://x", "", "", 0, "", false},
		{"gridrm:snmp:/x", "", "", 0, "", false},
		{"gridrm://", "", "", 0, "", false},
		{"gridrm://:99", "", "", 0, "", false},
		{"gridrm://host:notaport", "", "", 0, "", false},
		{"gridrm://host:0", "", "", 0, "", false},
		{"gridrm://host:70000", "", "", 0, "", false},
	}
	for _, c := range cases {
		u, err := ParseURL(c.raw)
		if c.ok != (err == nil) {
			t.Errorf("ParseURL(%q) err=%v, want ok=%v", c.raw, err, c.ok)
			continue
		}
		if !c.ok {
			if !errors.Is(err, ErrBadURL) {
				t.Errorf("ParseURL(%q) err=%v, want ErrBadURL", c.raw, err)
			}
			continue
		}
		if u.Protocol != c.proto || u.Host != c.host || u.Port != c.port || u.Path != c.path {
			t.Errorf("ParseURL(%q) = %+v", c.raw, u)
		}
		if u.String() != c.raw {
			t.Errorf("ParseURL(%q).String() = %q", c.raw, u.String())
		}
	}
}

func TestURLAddress(t *testing.T) {
	u, _ := ParseURL("gridrm:snmp://h")
	if got := u.Address(1161); got != "h:1161" {
		t.Errorf("default port address = %q", got)
	}
	u, _ = ParseURL("gridrm:snmp://h:99")
	if got := u.Address(1161); got != "h:99" {
		t.Errorf("explicit port address = %q", got)
	}
}

func TestFormatURL(t *testing.T) {
	cases := []struct {
		proto, host, path, want string
		port                    int
	}{
		{"snmp", "h", "p", "gridrm:snmp://h:1/p", 1},
		{"", "h", "", "gridrm://h", 0},
		{"nws", "h", "/lead", "gridrm:nws://h/lead", 0},
	}
	for _, c := range cases {
		got := FormatURL(c.proto, c.host, c.port, c.path)
		if got != c.want {
			t.Errorf("FormatURL = %q, want %q", got, c.want)
		}
		if _, err := ParseURL(got); err != nil {
			t.Errorf("FormatURL produced unparseable %q: %v", got, err)
		}
	}
}

func TestRegisterDeregister(t *testing.T) {
	m := NewManager()
	a := &fakeDriver{name: "jdbc-a", proto: "a"}
	if err := m.RegisterDriver(a); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterDriver(a); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if err := m.RegisterDriver(nil); err == nil {
		t.Error("nil registration succeeded")
	}
	if got := m.Drivers(); len(got) != 1 || got[0] != "jdbc-a" {
		t.Errorf("Drivers() = %v", got)
	}
	if err := m.DeregisterDriver("jdbc-a"); err != nil {
		t.Fatal(err)
	}
	if err := m.DeregisterDriver("jdbc-a"); err == nil {
		t.Error("double deregistration succeeded")
	}
	if len(m.Drivers()) != 0 {
		t.Error("driver list not empty")
	}
}

func TestDynamicSelectionScanOrder(t *testing.T) {
	m := NewManager()
	a := &fakeDriver{name: "jdbc-a", proto: "a"}
	b := &fakeDriver{name: "jdbc-b", proto: "b"}
	c := &fakeDriver{name: "jdbc-c", proto: "b"} // also accepts b
	for _, d := range []*fakeDriver{a, b, c} {
		if err := m.RegisterDriver(d); err != nil {
			t.Fatal(err)
		}
	}
	conn, err := m.Connect("gridrm:b://host", nil)
	if err != nil {
		t.Fatal(err)
	}
	// First registered acceptor wins.
	if conn.Driver() != "jdbc-b" {
		t.Errorf("selected %q", conn.Driver())
	}
	if name, ok := m.CachedDriver("gridrm:b://host"); !ok || name != "jdbc-b" {
		t.Errorf("cache = %q, %v", name, ok)
	}
}

func TestDynamicSelectionSkipsFailingDriver(t *testing.T) {
	m := NewManager()
	b := &fakeDriver{name: "jdbc-b", proto: "b"}
	c := &fakeDriver{name: "jdbc-c", proto: "b"}
	b.setFail(true)
	_ = m.RegisterDriver(b)
	_ = m.RegisterDriver(c)
	conn, err := m.Connect("gridrm:b://host", nil)
	if err != nil {
		t.Fatal(err)
	}
	// "supports the URL AND can connect" — b accepts but cannot connect.
	if conn.Driver() != "jdbc-c" {
		t.Errorf("selected %q", conn.Driver())
	}
}

func TestNoDriver(t *testing.T) {
	m := NewManager()
	_ = m.RegisterDriver(&fakeDriver{name: "jdbc-a", proto: "a"})
	if _, err := m.Connect("gridrm:z://host", nil); !errors.Is(err, ErrNoDriver) {
		t.Errorf("err = %v, want ErrNoDriver", err)
	}
	if _, err := m.Connect("not-a-url", nil); !errors.Is(err, ErrBadURL) {
		t.Errorf("err = %v, want ErrBadURL", err)
	}
}

func TestCacheHitAvoidsScan(t *testing.T) {
	m := NewManager()
	for i := 0; i < 8; i++ {
		proto := "x"
		if i == 7 {
			proto = "b"
		}
		_ = m.RegisterDriver(&fakeDriver{name: fmt.Sprintf("jdbc-%d", i), proto: proto})
	}
	url := "gridrm:b://host"
	if _, err := m.Connect(url, nil); err != nil {
		t.Fatal(err)
	}
	s1 := m.Stats()
	if _, err := m.Connect(url, nil); err != nil {
		t.Fatal(err)
	}
	s2 := m.Stats()
	if s2.Scans != s1.Scans {
		t.Errorf("cache hit still scanned (%d -> %d)", s1.Scans, s2.Scans)
	}
	if s2.CacheHits != s1.CacheHits+1 {
		t.Errorf("cache hits %d -> %d", s1.CacheHits, s2.CacheHits)
	}
}

func TestCachedDriverFailureTryNext(t *testing.T) {
	m := NewManager()
	b := &fakeDriver{name: "jdbc-b", proto: "b"}
	c := &fakeDriver{name: "jdbc-c", proto: "b"}
	_ = m.RegisterDriver(b)
	_ = m.RegisterDriver(c)
	url := "gridrm:b://host"
	if _, err := m.Connect(url, nil); err != nil {
		t.Fatal(err)
	}
	b.setFail(true)
	conn, err := m.Connect(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Driver() != "jdbc-c" {
		t.Errorf("failover selected %q", conn.Driver())
	}
	if name, _ := m.CachedDriver(url); name != "jdbc-c" {
		t.Errorf("cache after failover = %q", name)
	}
	if m.Stats().Failovers != 1 {
		t.Errorf("failovers = %d", m.Stats().Failovers)
	}
}

func TestCachedDriverFailureReport(t *testing.T) {
	m := NewManager()
	m.SetPolicy(Policy{OnFailure: Report})
	b := &fakeDriver{name: "jdbc-b", proto: "b"}
	c := &fakeDriver{name: "jdbc-c", proto: "b"}
	_ = m.RegisterDriver(b)
	_ = m.RegisterDriver(c)
	url := "gridrm:b://host"
	if _, err := m.Connect(url, nil); err != nil {
		t.Fatal(err)
	}
	b.setFail(true)
	if _, err := m.Connect(url, nil); err == nil {
		t.Error("Report policy did not surface failure")
	}
	// Cache entry is dropped so the next attempt can resolve dynamically.
	if _, ok := m.CachedDriver(url); ok {
		t.Error("stale cache entry kept under Report policy")
	}
}

func TestRetries(t *testing.T) {
	m := NewManager()
	m.SetPolicy(Policy{Retries: 2, OnFailure: Report})
	b := &fakeDriver{name: "jdbc-b", proto: "b"}
	b.setFail(true)
	_ = m.RegisterDriver(b)
	_, err := m.Connect("gridrm:b://host", nil)
	if err == nil {
		t.Fatal("connect to failing driver succeeded")
	}
	if got := m.Stats().ConnectFailures; got != 3 { // 1 + 2 retries
		t.Errorf("connect attempts = %d, want 3", got)
	}
}

func TestStaticPreferences(t *testing.T) {
	m := NewManager()
	b := &fakeDriver{name: "jdbc-b", proto: "b"}
	c := &fakeDriver{name: "jdbc-c", proto: "b"}
	_ = m.RegisterDriver(b)
	_ = m.RegisterDriver(c)
	url := "gridrm:b://host"
	m.SetPreferences(url, []string{"jdbc-c", "jdbc-b"})
	conn, err := m.Connect(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Driver() != "jdbc-c" {
		t.Errorf("preference ignored: %q", conn.Driver())
	}
	if got := m.Preferences(url); len(got) != 2 || got[0] != "jdbc-c" {
		t.Errorf("Preferences = %v", got)
	}
	m.SetPreferences(url, nil)
	if got := m.Preferences(url); len(got) != 0 {
		t.Errorf("cleared Preferences = %v", got)
	}
}

func TestPreferenceFailoverToDynamic(t *testing.T) {
	m := NewManager()
	b := &fakeDriver{name: "jdbc-b", proto: "b"}
	c := &fakeDriver{name: "jdbc-c", proto: "b"}
	c.setFail(true)
	_ = m.RegisterDriver(b)
	_ = m.RegisterDriver(c)
	url := "gridrm:b://host"
	m.SetPreferences(url, []string{"jdbc-c"})
	conn, err := m.Connect(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Driver() != "jdbc-b" {
		t.Errorf("dynamic fallback selected %q", conn.Driver())
	}

	m.SetPolicy(Policy{OnFailure: Report})
	if _, err := m.Connect("gridrm:b://host2", nil); err != nil {
		t.Fatal(err)
	}
	m.SetPreferences("gridrm:b://host2", []string{"jdbc-c"})
	if _, err := m.Connect("gridrm:b://host2", nil); err == nil {
		t.Error("Report policy with failed preference succeeded")
	}
}

func TestDeregisterInvalidatesCache(t *testing.T) {
	m := NewManager()
	b := &fakeDriver{name: "jdbc-b", proto: "b"}
	c := &fakeDriver{name: "jdbc-c", proto: "b"}
	_ = m.RegisterDriver(b)
	_ = m.RegisterDriver(c)
	url := "gridrm:b://host"
	if _, err := m.Connect(url, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.DeregisterDriver("jdbc-b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CachedDriver(url); ok {
		t.Error("cache survives deregistration")
	}
	conn, err := m.Connect(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Driver() != "jdbc-c" {
		t.Errorf("post-deregistration selected %q", conn.Driver())
	}
}

func TestSetCachingOff(t *testing.T) {
	m := NewManager()
	_ = m.RegisterDriver(&fakeDriver{name: "jdbc-b", proto: "b"})
	m.SetCaching(false)
	url := "gridrm:b://host"
	if _, err := m.Connect(url, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CachedDriver(url); ok {
		t.Error("caching disabled but entry present")
	}
	s1 := m.Stats()
	if _, err := m.Connect(url, nil); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Scans != s1.Scans+1 {
		t.Error("caching disabled but no rescan")
	}
}

func TestLocateDriver(t *testing.T) {
	m := NewManager()
	_ = m.RegisterDriver(&fakeDriver{name: "jdbc-a", proto: "a"})
	_ = m.RegisterDriver(&fakeDriver{name: "jdbc-b", proto: "b"})
	d, err := m.LocateDriver("gridrm:b://h")
	if err != nil || d.Name() != "jdbc-b" {
		t.Errorf("LocateDriver = %v, %v", d, err)
	}
	if _, err := m.LocateDriver("gridrm:z://h"); !errors.Is(err, ErrNoDriver) {
		t.Errorf("LocateDriver unknown = %v", err)
	}
}

func TestConcurrentConnects(t *testing.T) {
	m := NewManager()
	for i := 0; i < 4; i++ {
		_ = m.RegisterDriver(&fakeDriver{name: fmt.Sprintf("jdbc-%d", i), proto: "b"})
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("gridrm:b://host%d", i%4)
			if _, err := m.Connect(url, nil); err != nil {
				t.Errorf("concurrent connect: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := m.Stats().Connects; got != 32 {
		t.Errorf("connects = %d, want 32", got)
	}
}

func TestUnimplementedBasePattern(t *testing.T) {
	// The paper's §3.2.1 pattern: unimplemented methods behave like a full
	// driver that errored, not like a missing method.
	var c Conn = UnimplementedConn{}
	if _, err := c.CreateStatement(); !errors.Is(err, ErrNotImplemented) {
		t.Errorf("CreateStatement err = %v", err)
	}
	if err := c.Ping(); !errors.Is(err, ErrNotImplemented) {
		t.Errorf("Ping err = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close err = %v", err)
	}
	var s Stmt = UnimplementedStmt{}
	if _, err := s.ExecuteQuery("SELECT * FROM Processor"); !errors.Is(err, ErrNotImplemented) {
		t.Errorf("ExecuteQuery err = %v", err)
	}
	var ms MaxRowsSetter = UnimplementedStmt{}
	if err := ms.SetMaxRows(5); !errors.Is(err, ErrNotImplemented) {
		t.Errorf("SetMaxRows err = %v", err)
	}
}

// overrideStmt demonstrates incremental extension: embed the base, override
// one method, inherit failure behaviour for the rest.
type overrideStmt struct {
	UnimplementedStmt
}

func (overrideStmt) ExecuteQuery(string) (*resultset.ResultSet, error) {
	return nil, errors.New("custom")
}

func TestIncrementalOverride(t *testing.T) {
	var s Stmt = overrideStmt{}
	_, err := s.ExecuteQuery("x")
	if err == nil || !strings.Contains(err.Error(), "custom") {
		t.Errorf("override not used: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("inherited Close: %v", err)
	}
}

func TestPropertiesHelpers(t *testing.T) {
	var p Properties
	if p.Get("k", "d") != "d" {
		t.Error("nil Properties Get")
	}
	if p.Clone() != nil {
		t.Error("nil Clone should be nil")
	}
	p = Properties{"k": "v"}
	if p.Get("k", "d") != "v" || p.Get("z", "d") != "d" {
		t.Error("Get wrong")
	}
	q := p.Clone()
	q["k"] = "w"
	if p["k"] != "v" {
		t.Error("Clone aliases map")
	}
}

func TestStatsReset(t *testing.T) {
	m := NewManager()
	_ = m.RegisterDriver(&fakeDriver{name: "jdbc-b", proto: "b"})
	if _, err := m.Connect("gridrm:b://h", nil); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Connects == 0 {
		t.Fatal("no connects recorded")
	}
	m.ResetStats()
	if s := m.Stats(); s.Connects != 0 || s.Scans != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
}

func TestFailureActionString(t *testing.T) {
	if TryNext.String() != "try-next" || Report.String() != "report" {
		t.Error("FailureAction names wrong")
	}
}
