package driver

import (
	"context"
	"fmt"
	"runtime/debug"

	"gridrm/internal/resultset"
)

// PanicError reports a driver call that panicked. The paper's stubbed-JDBC
// idiom already makes a *partial* driver behave like a full driver that
// failed; PanicError extends the same promise to a *buggy* driver: the
// panic is converted at the call boundary into an ordinary error that feeds
// the retry/breaker/degradation pipeline instead of killing the gateway.
type PanicError struct {
	// Op names the driver call that panicked ("connect", "query", ...).
	Op string
	// Value is the value the driver panicked with.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("driver: panic in %s: %v", e.Op, e.Value)
}

// guard runs fn and converts a panic into a *PanicError.
func guard(op string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Op: op, Value: r, Stack: string(debug.Stack())}
		}
	}()
	fn()
	return nil
}

// SafeConnect calls d.Connect with panic containment.
func SafeConnect(d Driver, url string, props Properties) (conn Conn, err error) {
	if perr := guard("connect", func() { conn, err = d.Connect(url, props) }); perr != nil {
		return nil, perr
	}
	return conn, err
}

// SafeAccepts calls d.AcceptsURL with panic containment; a panicking driver
// simply does not accept the URL.
func SafeAccepts(d Driver, url string) (ok bool) {
	_ = guard("accepts-url", func() { ok = d.AcceptsURL(url) })
	return ok
}

// SafePing calls c.Ping with panic containment.
func SafePing(c Conn) error {
	var err error
	if perr := guard("ping", func() { err = c.Ping() }); perr != nil {
		return perr
	}
	return err
}

// SafeClose calls Close with panic containment. It accepts anything with a
// Close method so both connections and statements can be guarded.
func SafeClose(c interface{ Close() error }) error {
	var err error
	if perr := guard("close", func() { err = c.Close() }); perr != nil {
		return perr
	}
	return err
}

// SafeCreateStatement calls c.CreateStatement with panic containment.
func SafeCreateStatement(c Conn) (stmt Stmt, err error) {
	if perr := guard("create-statement", func() { stmt, err = c.CreateStatement() }); perr != nil {
		return nil, perr
	}
	return stmt, err
}

// safeExecuteContext runs the context-aware query path behind recover().
func safeExecuteContext(ctx context.Context, sc StmtContext, sql string) (rs *resultset.ResultSet, err error) {
	if perr := guard("query", func() { rs, err = sc.ExecuteQueryContext(ctx, sql) }); perr != nil {
		return nil, perr
	}
	return rs, err
}

// safeExecute runs the legacy blocking query path behind recover(). It is
// called both directly and from inside the goroutine shim — the shim MUST
// recover inside its own goroutine, since a panic there would otherwise
// escape every gateway-side defer and crash the process.
func safeExecute(stmt Stmt, sql string) (rs *resultset.ResultSet, err error) {
	if perr := guard("query", func() { rs, err = stmt.ExecuteQuery(sql) }); perr != nil {
		return nil, perr
	}
	return rs, err
}
