// Package security implements GridRM's two security layers (paper §2,
// Fig 2): the Coarse Grained Security Layer (CGSL), which sits under the
// Abstract Client Interface Layer and controls which clients may perform
// which classes of operation against a gateway at all, and the Fine Grained
// Security Layer (FGSL), which sits above the Abstract Data Layer and
// controls access per data source and GLUE group.
//
// Decisions are Allow, Deny, or Defer. Defer reproduces the paper's
// "in a hierarchy of GridRM Gateways, security decisions can be deferred to
// the local Gateway responsible for a given resource": a routing gateway
// whose policy defers forwards the request and lets the owning gateway's
// own policy decide; for a resource the deciding gateway itself owns,
// Defer falls back to the policy default.
//
// Rules are evaluated first-match-wins; principal names, roles, source URLs
// and host fields match with SQL LIKE patterns (% and _).
package security

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gridrm/internal/sqlparse"
)

// Principal identifies a client of the gateway.
type Principal struct {
	// Name is the client identity ("mab", "scheduler-7", ...).
	Name string
	// Roles are the client's granted roles.
	Roles []string
	// Site is the client's home Grid site, if known.
	Site string
}

// HasRole reports whether the principal holds a role.
func (p Principal) HasRole(role string) bool {
	for _, r := range p.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// Decision is the outcome of a policy check.
type Decision int

// Policy decisions.
const (
	// Deny refuses the operation.
	Deny Decision = iota
	// Allow permits the operation.
	Allow
	// Defer leaves the decision to the gateway that owns the resource.
	Defer
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	case Defer:
		return "defer"
	}
	return fmt.Sprintf("decision(%d)", int(d))
}

// Operation classifies gateway operations for the CGSL.
type Operation string

// Operation classes.
const (
	// OpQueryRealTime covers real-time and cached resource queries.
	OpQueryRealTime Operation = "query-realtime"
	// OpQueryHistory covers historical queries.
	OpQueryHistory Operation = "query-history"
	// OpManageDrivers covers driver registration/removal and preference
	// changes.
	OpManageDrivers Operation = "manage-drivers"
	// OpManageSources covers data-source add/remove.
	OpManageSources Operation = "manage-sources"
	// OpEvents covers event subscription and history access.
	OpEvents Operation = "events"
	// OpGlobalQuery covers queries routed in from remote gateways.
	OpGlobalQuery Operation = "global-query"
)

// CoarseRule is one CGSL rule.
type CoarseRule struct {
	// Principal is a LIKE pattern on the principal name; empty matches
	// all.
	Principal string
	// Role requires the principal to hold this role; empty matches all.
	Role string
	// Op restricts the rule to one operation class; empty matches all.
	Op Operation
	// Decision is returned when the rule matches.
	Decision Decision
}

func (r CoarseRule) matches(p Principal, op Operation) bool {
	if r.Principal != "" && !sqlparse.MatchLike(r.Principal, p.Name) {
		return false
	}
	if r.Role != "" && !p.HasRole(r.Role) {
		return false
	}
	if r.Op != "" && r.Op != op {
		return false
	}
	return true
}

// Stats counts policy checks by outcome.
type Stats struct {
	Checks int64
	Allows int64
	Denies int64
	Defers int64
}

type counters struct {
	checks, allows, denies, defers atomic.Int64
}

func (c *counters) record(d Decision) {
	c.checks.Add(1)
	switch d {
	case Allow:
		c.allows.Add(1)
	case Deny:
		c.denies.Add(1)
	case Defer:
		c.defers.Add(1)
	}
}

func (c *counters) snapshot() Stats {
	return Stats{
		Checks: c.checks.Load(),
		Allows: c.allows.Load(),
		Denies: c.denies.Load(),
		Defers: c.defers.Load(),
	}
}

// CoarsePolicy is the CGSL rule set.
type CoarsePolicy struct {
	mu       sync.RWMutex
	rules    []CoarseRule
	fallback Decision
	counters counters
}

// NewCoarsePolicy creates a CGSL policy with the given default decision.
func NewCoarsePolicy(fallback Decision) *CoarsePolicy {
	return &CoarsePolicy{fallback: fallback}
}

// OpenCoarsePolicy allows everything; the out-of-the-box gateway policy.
func OpenCoarsePolicy() *CoarsePolicy { return NewCoarsePolicy(Allow) }

// Add appends a rule (rules are first-match-wins).
func (p *CoarsePolicy) Add(r CoarseRule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, r)
}

// Rules returns a copy of the rule list.
func (p *CoarsePolicy) Rules() []CoarseRule {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]CoarseRule(nil), p.rules...)
}

// Check evaluates the policy for a principal and operation.
func (p *CoarsePolicy) Check(pr Principal, op Operation) Decision {
	p.mu.RLock()
	d := p.fallback
	for _, r := range p.rules {
		if r.matches(pr, op) {
			d = r.Decision
			break
		}
	}
	p.mu.RUnlock()
	p.counters.record(d)
	return d
}

// Stats returns check counters.
func (p *CoarsePolicy) Stats() Stats { return p.counters.snapshot() }

// FineRule is one FGSL rule.
type FineRule struct {
	// Principal is a LIKE pattern on the principal name; empty matches
	// all.
	Principal string
	// Role requires the principal to hold this role; empty matches all.
	Role string
	// Source is a LIKE pattern on the data-source URL; empty matches all.
	Source string
	// Group restricts the rule to one GLUE group; empty matches all.
	Group string
	// Decision is returned when the rule matches.
	Decision Decision
}

func (r FineRule) matches(p Principal, source, group string) bool {
	if r.Principal != "" && !sqlparse.MatchLike(r.Principal, p.Name) {
		return false
	}
	if r.Role != "" && !p.HasRole(r.Role) {
		return false
	}
	if r.Source != "" && !sqlparse.MatchLike(r.Source, source) {
		return false
	}
	if r.Group != "" && r.Group != group {
		return false
	}
	return true
}

// FinePolicy is the FGSL rule set.
type FinePolicy struct {
	mu       sync.RWMutex
	rules    []FineRule
	fallback Decision
	counters counters
}

// NewFinePolicy creates an FGSL policy with the given default decision.
func NewFinePolicy(fallback Decision) *FinePolicy {
	return &FinePolicy{fallback: fallback}
}

// OpenFinePolicy allows everything.
func OpenFinePolicy() *FinePolicy { return NewFinePolicy(Allow) }

// Add appends a rule (rules are first-match-wins).
func (p *FinePolicy) Add(r FineRule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, r)
}

// Rules returns a copy of the rule list.
func (p *FinePolicy) Rules() []FineRule {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]FineRule(nil), p.rules...)
}

// Check evaluates the policy for a principal, data source, and GLUE group.
func (p *FinePolicy) Check(pr Principal, source, group string) Decision {
	p.mu.RLock()
	d := p.fallback
	for _, r := range p.rules {
		if r.matches(pr, source, group) {
			d = r.Decision
			break
		}
	}
	p.mu.RUnlock()
	p.counters.record(d)
	return d
}

// Stats returns check counters.
func (p *FinePolicy) Stats() Stats { return p.counters.snapshot() }
