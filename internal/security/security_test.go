package security

import (
	"sync"
	"testing"
)

var alice = Principal{Name: "alice", Roles: []string{"operator"}, Site: "A"}
var bob = Principal{Name: "bob", Roles: []string{"guest"}}

func TestHasRole(t *testing.T) {
	if !alice.HasRole("operator") || alice.HasRole("admin") {
		t.Error("HasRole wrong")
	}
	if (Principal{}).HasRole("x") {
		t.Error("empty principal has role")
	}
}

func TestDecisionString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" || Defer.String() != "defer" {
		t.Error("decision names")
	}
	if Decision(42).String() != "decision(42)" {
		t.Error("unknown decision format")
	}
}

func TestCoarseDefault(t *testing.T) {
	open := OpenCoarsePolicy()
	if open.Check(bob, OpQueryRealTime) != Allow {
		t.Error("open policy denied")
	}
	closed := NewCoarsePolicy(Deny)
	if closed.Check(alice, OpQueryRealTime) != Deny {
		t.Error("closed policy allowed")
	}
}

func TestCoarseFirstMatchWins(t *testing.T) {
	p := NewCoarsePolicy(Deny)
	p.Add(CoarseRule{Principal: "alice", Op: OpManageDrivers, Decision: Deny})
	p.Add(CoarseRule{Principal: "alice", Decision: Allow})
	if p.Check(alice, OpManageDrivers) != Deny {
		t.Error("first rule not preferred")
	}
	if p.Check(alice, OpQueryRealTime) != Allow {
		t.Error("second rule not reached")
	}
	if p.Check(bob, OpQueryRealTime) != Deny {
		t.Error("default not applied")
	}
}

func TestCoarsePatternsAndRoles(t *testing.T) {
	p := NewCoarsePolicy(Deny)
	p.Add(CoarseRule{Principal: "sched%", Op: OpQueryRealTime, Decision: Allow})
	p.Add(CoarseRule{Role: "operator", Decision: Allow})
	if p.Check(Principal{Name: "scheduler-7"}, OpQueryRealTime) != Allow {
		t.Error("LIKE principal pattern failed")
	}
	if p.Check(Principal{Name: "scheduler-7"}, OpManageDrivers) != Deny {
		t.Error("op restriction ignored")
	}
	if p.Check(alice, OpManageDrivers) != Allow {
		t.Error("role rule failed")
	}
	if p.Check(bob, OpEvents) != Deny {
		t.Error("unmatched principal allowed")
	}
}

func TestCoarseStats(t *testing.T) {
	p := NewCoarsePolicy(Deny)
	p.Add(CoarseRule{Principal: "alice", Decision: Allow})
	p.Check(alice, OpEvents)
	p.Check(bob, OpEvents)
	s := p.Stats()
	if s.Checks != 2 || s.Allows != 1 || s.Denies != 1 || s.Defers != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestFinePolicy(t *testing.T) {
	p := NewFinePolicy(Deny)
	p.Add(FineRule{Source: "gridrm:snmp://%", Group: "Process", Decision: Deny})
	p.Add(FineRule{Role: "operator", Source: "gridrm:snmp://%", Decision: Allow})
	p.Add(FineRule{Group: "Processor", Decision: Allow})

	if p.Check(alice, "gridrm:snmp://h:1", "Process") != Deny {
		t.Error("process table exposed")
	}
	if p.Check(alice, "gridrm:snmp://h:1", "Memory") != Allow {
		t.Error("operator snmp access denied")
	}
	if p.Check(bob, "gridrm:ganglia://h:1", "Processor") != Allow {
		t.Error("public processor group denied")
	}
	if p.Check(bob, "gridrm:ganglia://h:1", "Memory") != Deny {
		t.Error("default not applied")
	}
}

func TestFineDefer(t *testing.T) {
	p := NewFinePolicy(Allow)
	p.Add(FineRule{Source: "gridrm:remote://%", Decision: Defer})
	if p.Check(alice, "gridrm:remote://b:1", "Memory") != Defer {
		t.Error("defer rule not applied")
	}
	if p.Stats().Defers != 1 {
		t.Errorf("defer stats %+v", p.Stats())
	}
}

func TestRulesCopies(t *testing.T) {
	p := NewCoarsePolicy(Deny)
	p.Add(CoarseRule{Principal: "x", Decision: Allow})
	rules := p.Rules()
	rules[0].Principal = "mutated"
	if p.Rules()[0].Principal != "x" {
		t.Error("Rules returned shared slice")
	}
	f := NewFinePolicy(Deny)
	f.Add(FineRule{Source: "s", Decision: Allow})
	fr := f.Rules()
	fr[0].Source = "mutated"
	if f.Rules()[0].Source != "s" {
		t.Error("fine Rules returned shared slice")
	}
}

func TestConcurrentCheckAndAdd(t *testing.T) {
	p := NewFinePolicy(Deny)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			p.Add(FineRule{Principal: "u%", Decision: Allow})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			p.Check(alice, "gridrm:x://h:1", "Memory")
		}
	}()
	wg.Wait()
	if p.Stats().Checks != 500 {
		t.Errorf("checks = %d", p.Stats().Checks)
	}
}
