package glue

import (
	"strings"
	"testing"
	"time"
)

func TestLookupKnownGroups(t *testing.T) {
	for _, name := range []string{
		GroupComputeElement, GroupProcessor, GroupMemory, GroupDisk,
		GroupNetworkAdapter, GroupOperatingSystem, GroupProcess,
		GroupStorageElement, GroupNetworkElement,
	} {
		g, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) not found", name)
		}
		if g.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, g.Name)
		}
		if len(g.Fields) == 0 {
			t.Errorf("group %q has no fields", name)
		}
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	for _, v := range []string{"processor", "PROCESSOR", "pRoCeSsOr"} {
		if _, ok := Lookup(v); !ok {
			t.Errorf("Lookup(%q) should find Processor", v)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("NoSuchGroup"); ok {
		t.Error("Lookup of unknown group succeeded")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup of unknown group did not panic")
		}
	}()
	MustLookup("NoSuchGroup")
}

func TestGroupNamesSortedAndComplete(t *testing.T) {
	names := GroupNames()
	if len(names) != 9 {
		t.Fatalf("expected 9 groups, got %d: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("GroupNames not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	// Mutating the returned slice must not affect the schema.
	names[0] = "mutated"
	if GroupNames()[0] == "mutated" {
		t.Error("GroupNames returned shared slice")
	}
}

func TestGroupsMatchesGroupNames(t *testing.T) {
	gs := Groups()
	names := GroupNames()
	if len(gs) != len(names) {
		t.Fatalf("Groups()=%d, GroupNames()=%d", len(gs), len(names))
	}
	for i, g := range gs {
		if g.Name != names[i] {
			t.Errorf("Groups()[%d]=%q, want %q", i, g.Name, names[i])
		}
	}
}

func TestFieldLookup(t *testing.T) {
	p := MustLookup(GroupProcessor)
	f, ok := p.Field("loadlast1min")
	if !ok {
		t.Fatal("case-insensitive field lookup failed")
	}
	if f.Name != "LoadLast1Min" || f.Kind != Float {
		t.Errorf("unexpected field %+v", f)
	}
	if _, ok := p.Field("Nope"); ok {
		t.Error("unknown field lookup succeeded")
	}
}

func TestFieldIndex(t *testing.T) {
	p := MustLookup(GroupProcessor)
	if i := p.FieldIndex("HostName"); i != 0 {
		t.Errorf("HostName index = %d, want 0", i)
	}
	if i := p.FieldIndex("nope"); i != -1 {
		t.Errorf("unknown field index = %d, want -1", i)
	}
	for i, f := range p.Fields {
		if j := p.FieldIndex(f.Name); j != i {
			t.Errorf("FieldIndex(%q) = %d, want %d", f.Name, j, i)
		}
	}
}

func TestFieldNamesOrder(t *testing.T) {
	m := MustLookup(GroupMemory)
	names := m.FieldNames()
	if names[0] != "HostName" || names[1] != "RAMSize" {
		t.Errorf("unexpected canonical order: %v", names)
	}
	if len(names) != len(m.Fields) {
		t.Errorf("FieldNames length %d != Fields length %d", len(names), len(m.Fields))
	}
}

func TestKeyFields(t *testing.T) {
	tests := []struct {
		group string
		want  []string
	}{
		{GroupProcessor, []string{"HostName"}},
		{GroupDisk, []string{"HostName", "DeviceName"}},
		{GroupProcess, []string{"HostName", "PID"}},
		{GroupNetworkAdapter, []string{"HostName", "InterfaceName"}},
	}
	for _, tc := range tests {
		got := MustLookup(tc.group).KeyFields()
		if strings.Join(got, ",") != strings.Join(tc.want, ",") {
			t.Errorf("%s keys = %v, want %v", tc.group, got, tc.want)
		}
	}
}

func TestCheckValue(t *testing.T) {
	cases := []struct {
		f  Field
		v  any
		ok bool
	}{
		{Field{Name: "s", Kind: String}, "x", true},
		{Field{Name: "s", Kind: String}, int64(1), false},
		{Field{Name: "i", Kind: Int}, int64(1), true},
		{Field{Name: "i", Kind: Int}, 1, false}, // plain int is rejected
		{Field{Name: "i", Kind: Int}, 1.0, false},
		{Field{Name: "f", Kind: Float}, 1.5, true},
		{Field{Name: "f", Kind: Float}, int64(1), false},
		{Field{Name: "b", Kind: Bool}, true, true},
		{Field{Name: "b", Kind: Bool}, "true", false},
		{Field{Name: "t", Kind: Time}, time.Now(), true},
		{Field{Name: "t", Kind: Time}, "2020-01-01", false},
		{Field{Name: "n", Kind: Int}, nil, true}, // NULL always acceptable
	}
	for _, c := range cases {
		err := CheckValue(c.f, c.v)
		if (err == nil) != c.ok {
			t.Errorf("CheckValue(%v kind=%v, %#v): err=%v, want ok=%v", c.f.Name, c.f.Kind, c.v, err, c.ok)
		}
	}
}

func TestValidateRow(t *testing.T) {
	g := MustLookup(GroupNetworkElement) // Name, Type, PortCount, Status
	if err := ValidateRow(g, []any{"r1", "router", int64(24), "up"}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := ValidateRow(g, []any{"r1", "router", int64(24)}); err == nil {
		t.Error("short row accepted")
	}
	if err := ValidateRow(g, []any{"r1", "router", "24", "up"}); err == nil {
		t.Error("mistyped row accepted")
	}
	if err := ValidateRow(g, []any{nil, nil, nil, nil}); err != nil {
		t.Errorf("all-NULL row rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{String: "string", Int: "int", Float: "float", Bool: "bool", Time: "time"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind formatted as %q", Kind(99).String())
	}
}

func TestEveryGroupHasKeyAndHostContext(t *testing.T) {
	for _, g := range Groups() {
		if len(g.KeyFields()) == 0 {
			t.Errorf("group %s has no key fields", g.Name)
		}
		for _, f := range g.Fields {
			if f.Name == "" {
				t.Errorf("group %s has unnamed field", g.Name)
			}
			if f.Desc == "" {
				t.Errorf("group %s field %s has no description", g.Name, f.Name)
			}
		}
	}
}
