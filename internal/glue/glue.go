// Package glue implements the common naming schema GridRM uses to present a
// homogeneous view of heterogeneous resource data.
//
// The schema is modelled on the Grid Laboratory Uniform Environment (GLUE)
// schema referenced by the paper (§3.1.4): data is logically organised into
// named groups (ComputeElement, Processor, Memory, ...), each group
// prescribing a set of typed, unit-annotated fields. A group is directly
// comparable to a table of a relational database; clients SELECT from group
// names and drivers are responsible for mapping native agent data onto the
// group's fields. Where a translation is not possible for a field, drivers
// return NULL (a nil value) for it, per §3.1.4.
package glue

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind enumerates the value types a GLUE field may carry.
type Kind int

// The supported field kinds.
const (
	String Kind = iota
	Int
	Float
	Bool
	Time
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Time:
		return "time"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Field describes one attribute of a GLUE group.
type Field struct {
	// Name is the canonical field name, unique within its group.
	Name string
	// Kind is the value type the field carries.
	Kind Kind
	// Unit is the unit of measure ("MB", "MHz", "%", ...); empty for
	// dimensionless or string fields.
	Unit string
	// Desc is a one-line human description.
	Desc string
	// Key marks fields that identify the entity a row describes
	// (for example HostName, or HostName+DeviceName for disks).
	Key bool
}

// Group is a named collection of fields; the unit of querying in GridRM
// ("SELECT * FROM Processor").
type Group struct {
	// Name is the canonical group name.
	Name string
	// Desc is a one-line human description.
	Desc string
	// Fields lists the group's attributes in canonical order.
	Fields []Field

	index map[string]int
}

// FieldNames returns the canonical field names in order.
func (g *Group) FieldNames() []string {
	names := make([]string, len(g.Fields))
	for i, f := range g.Fields {
		names[i] = f.Name
	}
	return names
}

// Field returns the field with the given name (case-insensitive) and
// whether it exists.
func (g *Group) Field(name string) (Field, bool) {
	i, ok := g.index[strings.ToLower(name)]
	if !ok {
		return Field{}, false
	}
	return g.Fields[i], true
}

// FieldIndex returns the position of the named field (case-insensitive)
// in the group's canonical order, or -1 if the group has no such field.
func (g *Group) FieldIndex(name string) int {
	i, ok := g.index[strings.ToLower(name)]
	if !ok {
		return -1
	}
	return i
}

// KeyFields returns the names of the group's key fields in canonical order.
func (g *Group) KeyFields() []string {
	var keys []string
	for _, f := range g.Fields {
		if f.Key {
			keys = append(keys, f.Name)
		}
	}
	return keys
}

// Canonical group names.
const (
	GroupComputeElement  = "ComputeElement"
	GroupProcessor       = "Processor"
	GroupMemory          = "Memory"
	GroupDisk            = "Disk"
	GroupNetworkAdapter  = "NetworkAdapter"
	GroupOperatingSystem = "OperatingSystem"
	GroupProcess         = "Process"
	GroupStorageElement  = "StorageElement"
	GroupNetworkElement  = "NetworkElement"
)

var groups = map[string]*Group{}
var groupNames []string

func register(g *Group) *Group {
	g.index = make(map[string]int, len(g.Fields))
	for i, f := range g.Fields {
		key := strings.ToLower(f.Name)
		if _, dup := g.index[key]; dup {
			panic("glue: duplicate field " + f.Name + " in group " + g.Name)
		}
		g.index[key] = i
	}
	lower := strings.ToLower(g.Name)
	if _, dup := groups[lower]; dup {
		panic("glue: duplicate group " + g.Name)
	}
	groups[lower] = g
	groupNames = append(groupNames, g.Name)
	sort.Strings(groupNames)
	return g
}

// Lookup returns the group with the given name (case-insensitive).
func Lookup(name string) (*Group, bool) {
	g, ok := groups[strings.ToLower(name)]
	return g, ok
}

// MustLookup is like Lookup but panics if the group does not exist. It is
// intended for initialisation paths with literal group names.
func MustLookup(name string) *Group {
	g, ok := Lookup(name)
	if !ok {
		panic("glue: unknown group " + name)
	}
	return g
}

// GroupNames returns the canonical names of all schema groups, sorted.
func GroupNames() []string {
	out := make([]string, len(groupNames))
	copy(out, groupNames)
	return out
}

// Groups returns all schema groups sorted by name.
func Groups() []*Group {
	out := make([]*Group, 0, len(groupNames))
	for _, n := range groupNames {
		g, _ := Lookup(n)
		out = append(out, g)
	}
	return out
}

// The schema definition. Field sets follow the GLUE compute/storage/network
// element conceptual schemas, trimmed to the attributes the paper's agent
// set can plausibly supply.
var (
	// ComputeElement describes a site-level batch/compute endpoint.
	ComputeElement = register(&Group{
		Name: GroupComputeElement,
		Desc: "A compute service endpoint (cluster head or batch queue).",
		Fields: []Field{
			{Name: "CEId", Kind: String, Desc: "Unique compute element identifier", Key: true},
			{Name: "HostName", Kind: String, Desc: "Head node host name"},
			{Name: "LRMSType", Kind: String, Desc: "Local resource management system type"},
			{Name: "TotalCPUs", Kind: Int, Desc: "Total CPUs available"},
			{Name: "FreeCPUs", Kind: Int, Desc: "CPUs currently free"},
			{Name: "RunningJobs", Kind: Int, Desc: "Jobs currently running"},
			{Name: "WaitingJobs", Kind: Int, Desc: "Jobs currently queued"},
			{Name: "Status", Kind: String, Desc: "Operational status"},
		},
	})

	// Processor describes per-host CPU identity and load.
	Processor = register(&Group{
		Name: GroupProcessor,
		Desc: "Per-host processor identity and load.",
		Fields: []Field{
			{Name: "HostName", Kind: String, Desc: "Host name", Key: true},
			{Name: "Model", Kind: String, Desc: "Processor model string"},
			{Name: "Vendor", Kind: String, Desc: "Processor vendor"},
			{Name: "ClockSpeed", Kind: Int, Unit: "MHz", Desc: "Clock speed"},
			{Name: "CacheSize", Kind: Int, Unit: "KB", Desc: "L2 cache size"},
			{Name: "CPUCount", Kind: Int, Desc: "Number of processors"},
			{Name: "LoadLast1Min", Kind: Float, Desc: "1-minute load average"},
			{Name: "LoadLast5Min", Kind: Float, Desc: "5-minute load average"},
			{Name: "LoadLast15Min", Kind: Float, Desc: "15-minute load average"},
			{Name: "Utilization", Kind: Float, Unit: "%", Desc: "Instantaneous CPU utilisation"},
		},
	})

	// Memory describes per-host physical and virtual memory.
	Memory = register(&Group{
		Name: GroupMemory,
		Desc: "Per-host physical and virtual memory.",
		Fields: []Field{
			{Name: "HostName", Kind: String, Desc: "Host name", Key: true},
			{Name: "RAMSize", Kind: Int, Unit: "MB", Desc: "Physical memory size"},
			{Name: "RAMAvailable", Kind: Int, Unit: "MB", Desc: "Physical memory available"},
			{Name: "VirtualSize", Kind: Int, Unit: "MB", Desc: "Virtual memory size"},
			{Name: "VirtualAvailable", Kind: Int, Unit: "MB", Desc: "Virtual memory available"},
			{Name: "SwapInRate", Kind: Float, Unit: "pages/s", Desc: "Swap-in rate"},
			{Name: "SwapOutRate", Kind: Float, Unit: "pages/s", Desc: "Swap-out rate"},
		},
	})

	// Disk describes one storage device on a host.
	Disk = register(&Group{
		Name: GroupDisk,
		Desc: "Per-device disk capacity and throughput.",
		Fields: []Field{
			{Name: "HostName", Kind: String, Desc: "Host name", Key: true},
			{Name: "DeviceName", Kind: String, Desc: "Device name", Key: true},
			{Name: "Size", Kind: Int, Unit: "MB", Desc: "Device capacity"},
			{Name: "Available", Kind: Int, Unit: "MB", Desc: "Free capacity"},
			{Name: "ReadRate", Kind: Float, Unit: "MB/s", Desc: "Current read throughput"},
			{Name: "WriteRate", Kind: Float, Unit: "MB/s", Desc: "Current write throughput"},
		},
	})

	// NetworkAdapter describes one network interface on a host.
	NetworkAdapter = register(&Group{
		Name: GroupNetworkAdapter,
		Desc: "Per-interface network identity and counters.",
		Fields: []Field{
			{Name: "HostName", Kind: String, Desc: "Host name", Key: true},
			{Name: "InterfaceName", Kind: String, Desc: "Interface name", Key: true},
			{Name: "IPAddress", Kind: String, Desc: "IPv4 address"},
			{Name: "MTU", Kind: Int, Unit: "bytes", Desc: "Maximum transmission unit"},
			{Name: "Bandwidth", Kind: Float, Unit: "Mb/s", Desc: "Nominal link bandwidth"},
			{Name: "Latency", Kind: Float, Unit: "ms", Desc: "Measured round-trip latency"},
			{Name: "BytesIn", Kind: Int, Unit: "bytes", Desc: "Octets received"},
			{Name: "BytesOut", Kind: Int, Unit: "bytes", Desc: "Octets transmitted"},
			{Name: "PacketsIn", Kind: Int, Desc: "Packets received"},
			{Name: "PacketsOut", Kind: Int, Desc: "Packets transmitted"},
		},
	})

	// OperatingSystem describes per-host OS identity and uptime.
	OperatingSystem = register(&Group{
		Name: GroupOperatingSystem,
		Desc: "Per-host operating system identity.",
		Fields: []Field{
			{Name: "HostName", Kind: String, Desc: "Host name", Key: true},
			{Name: "Name", Kind: String, Desc: "Operating system name"},
			{Name: "Release", Kind: String, Desc: "Kernel release"},
			{Name: "Version", Kind: String, Desc: "Operating system version"},
			{Name: "Uptime", Kind: Int, Unit: "s", Desc: "Seconds since boot"},
			{Name: "BootTime", Kind: Time, Desc: "Boot timestamp"},
		},
	})

	// Process describes one process on a host.
	Process = register(&Group{
		Name: GroupProcess,
		Desc: "Per-process resource usage.",
		Fields: []Field{
			{Name: "HostName", Kind: String, Desc: "Host name", Key: true},
			{Name: "PID", Kind: Int, Desc: "Process identifier", Key: true},
			{Name: "Name", Kind: String, Desc: "Process name"},
			{Name: "State", Kind: String, Desc: "Scheduler state"},
			{Name: "User", Kind: String, Desc: "Owning user"},
			{Name: "CPUPercent", Kind: Float, Unit: "%", Desc: "CPU share"},
			{Name: "MemoryKB", Kind: Int, Unit: "KB", Desc: "Resident memory"},
		},
	})

	// StorageElement describes a site-level storage endpoint.
	StorageElement = register(&Group{
		Name: GroupStorageElement,
		Desc: "A storage service endpoint.",
		Fields: []Field{
			{Name: "SEId", Kind: String, Desc: "Unique storage element identifier", Key: true},
			{Name: "HostName", Kind: String, Desc: "Service host name"},
			{Name: "Protocol", Kind: String, Desc: "Access protocol"},
			{Name: "TotalSize", Kind: Int, Unit: "GB", Desc: "Total capacity"},
			{Name: "UsedSize", Kind: Int, Unit: "GB", Desc: "Used capacity"},
			{Name: "Status", Kind: String, Desc: "Operational status"},
		},
	})

	// NetworkElement describes network infrastructure (hubs, routers,
	// gateways) per the paper's §1 resource taxonomy.
	NetworkElement = register(&Group{
		Name: GroupNetworkElement,
		Desc: "Network infrastructure device.",
		Fields: []Field{
			{Name: "Name", Kind: String, Desc: "Device name", Key: true},
			{Name: "Type", Kind: String, Desc: "Device type (router, switch, hub)"},
			{Name: "PortCount", Kind: Int, Desc: "Number of ports"},
			{Name: "Status", Kind: String, Desc: "Operational status"},
		},
	})
)

// CheckValue reports whether v is acceptable for field f: nil (NULL) is
// always acceptable; otherwise the dynamic type must match the field kind.
func CheckValue(f Field, v any) error {
	if v == nil {
		return nil
	}
	ok := false
	switch f.Kind {
	case String:
		_, ok = v.(string)
	case Int:
		_, ok = v.(int64)
	case Float:
		_, ok = v.(float64)
	case Bool:
		_, ok = v.(bool)
	case Time:
		_, ok = v.(time.Time)
	}
	if !ok {
		return fmt.Errorf("glue: field %s expects %s, got %T", f.Name, f.Kind, v)
	}
	return nil
}

// ValidateRow checks a full row (in canonical field order) against group g.
func ValidateRow(g *Group, row []any) error {
	if len(row) != len(g.Fields) {
		return fmt.Errorf("glue: group %s expects %d fields, row has %d", g.Name, len(g.Fields), len(row))
	}
	for i, f := range g.Fields {
		if err := CheckValue(f, row[i]); err != nil {
			return fmt.Errorf("glue: group %s: %w", g.Name, err)
		}
	}
	return nil
}
