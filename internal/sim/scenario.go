package sim

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"gridrm/internal/sqlparse"
	"gridrm/internal/tsdb"
)

// Scenario is a parsed simulation scenario: a fleet to build, a client load
// to apply, fault events to fire and assertions to check at the end.
type Scenario struct {
	Name        string
	Description string
	Seed        int64         // default seed; the CLI -seed flag overrides it
	Duration    time.Duration // how long the client load runs
	Fleet       FleetSpec
	Federation  FederationSpec
	Load        LoadSpec
	Events      []EventSpec
	Assertions  map[string]float64
}

// FleetSpec declares the simulated fleet as site templates.
type FleetSpec struct {
	Sites []SiteTemplate
}

// SiteTemplate expands into Count site instances, each a real core.Gateway
// with Sources fleet-driver sources of Hosts hosts each. A template named
// "edge" with count 3 yields instances edge-1, edge-2, edge-3; with count 1
// the instance keeps the template name.
type SiteTemplate struct {
	Name    string
	Count   int // site instances (default 1)
	Sources int // sources per site (default 4)
	Hosts   int // hosts per source (default 2)
	Weight  int // relative share of remote/fanout client traffic (default 1)

	// Gateway tuning; zero values keep the core defaults.
	CacheTTL              time.Duration
	StaleGrace            time.Duration
	HarvestTimeout        time.Duration
	QueryTimeout          time.Duration
	BreakerThreshold      int
	BreakerCooldown       time.Duration
	MaxConcurrentHarvests int
	ProbeInterval         time.Duration
	DisableHistory        bool
	DisableCoalescing     bool
	// DurableHistory gives every instance of this template a crash-safe
	// history dir (WAL + checkpoints) under the harness's temp root, so
	// restart_gateway events restore pre-crash history.
	DurableHistory bool
	// HistoryFsync is the WAL fsync policy for DurableHistory sites
	// ("always", "interval" or "off"; empty = tsdb default).
	HistoryFsync string
	// SubscribeQueue sizes each continuous-query subscriber's bounded
	// queue (0 = router default 256).
	SubscribeQueue int
	// SubscribeStall is how long a subscriber's queue must stay
	// continuously full before the router evicts it (0 = router default
	// 10s; the churn scenarios shrink it so eviction fires within a run).
	SubscribeStall time.Duration
}

// FederationSpec wires the fleet into a GMA federation: directory replicas,
// per-site registrars and web servers, and a resilient router on the entry
// site. Without it, clients only ever see the entry gateway locally.
type FederationSpec struct {
	Enabled       bool
	Directories   int           // directory replicas (default 1)
	LookupTTL     time.Duration // router lookup cache TTL (default 250ms)
	HedgeAfter    time.Duration // hedged remote reads (0 = off)
	RetryAttempts int           // remote retry attempts (0 = router default)
	EntrySite     string        // site clients talk to (default: first instance)

	// Republishers shards the sites across this many republisher gateways
	// (repub-1..repub-N) on a consistent-hash ring; the entry router then
	// answers fan-outs as a tree of region aggregates and routes cached
	// site reads republisher-first. 0 keeps the flat federation.
	Republishers int
	// RepubRefresh is the republishers' directory poll / rebalance cadence
	// (default 200ms — sim runs are seconds long).
	RepubRefresh time.Duration
	// RepubScrape is the republishers' re-scrape cadence (default 300ms).
	RepubScrape time.Duration
}

// LoadSpec declares the client load.
type LoadSpec struct {
	Clients         int           // concurrent clients (default 4)
	Transport       string        // "inproc" (default) or "http"
	ThinkTime       time.Duration // per-client pause between queries
	SourcesPerQuery int           // 0 = query all sources; N = N seeded-random sources
	MaxInFlight     int           // entry-server admission gate (0 = no gate)
	MaxQueue        int           // admission queue behind the gate
	Mix             []MixEntry

	// Subscribers opens this many continuous-query subscriptions on the
	// entry gateway before the load starts; each drains its rows until a
	// stall_subscriber or kill_subscriber event hits it.
	Subscribers int
	// SubscriberSQL is the continuous query the subscribers register
	// (default "SELECT * FROM Processor"; aggregates are rejected).
	SubscriberSQL string
	// DeadSink registers an HTTP push sink on the entry gateway whose
	// endpoint drops every connection — the down-sink half of the
	// backpressure chaos proof. Its breaker must open; the harvest path
	// must not notice.
	DeadSink bool
}

// MixEntry is one weighted query shape in the load mix.
type MixEntry struct {
	Mode   string // cached | real-time | historical
	Scope  string // local | remote | fanout (default local)
	Table  string // GLUE table (default Processor)
	SQL    string // full query text overriding "SELECT * FROM <table>"
	Weight int    // relative frequency (default 1)
}

// labelPlans caches parsed mix SQL so Label stays cheap on the hot path.
var labelPlans = sqlparse.NewPlanCache(64)

// Label names the latency bucket this mix entry's samples land in.
// Aggregate SQL gets its own "-agg" bucket so pushdown latencies are
// reported separately from raw-row scans.
func (m MixEntry) Label() string {
	label := m.Mode
	if m.Scope != ScopeLocal {
		label = m.Scope + "-" + m.Mode
	}
	if m.SQL != "" {
		if q, err := labelPlans.Parse(m.SQL); err == nil && q.Aggregate() {
			label += "-agg"
		}
	}
	return label
}

// EventSpec is one timed fault (or heal) event.
type EventSpec struct {
	At          time.Duration
	Action      string
	Site        string        // target site template or instance ("" = seeded-random site)
	Count       int           // targets for kill_source/revive_source (default 1)
	Latency     time.Duration // for latency_spike
	ErrorEvery  int           // for driver_errors (default 1 = every call)
	Directory   int           // replica index for directory_down/up (default 0)
	Republisher int           // 1-based index for *_republisher actions (default 1)
}

// Load scopes.
const (
	ScopeLocal  = "local"
	ScopeRemote = "remote"
	ScopeFanout = "fanout"
)

// Event actions.
const (
	ActionKillSource        = "kill_source"
	ActionReviveSource      = "revive_source"
	ActionPartitionSite     = "partition_site"
	ActionHealSite          = "heal_site"
	ActionDirectoryDown     = "directory_down"
	ActionDirectoryUp       = "directory_up"
	ActionLatencySpike      = "latency_spike"
	ActionLatencyClear      = "latency_clear"
	ActionDriverErrors      = "driver_errors"
	ActionDriverErrorsClear = "driver_errors_clear"
	ActionRestartGateway    = "restart_gateway"
	ActionStallSubscriber   = "stall_subscriber"
	ActionKillSubscriber    = "kill_subscriber"
	// ActionKillRepublisher crashes a republisher: its servlet drops
	// connections and its loops halt, but its registration stays in the
	// directory — the entry router must fall through to direct site
	// queries. ActionReviveRepublisher undoes it.
	// ActionDrainRepublisher is the graceful path: deregister first, then
	// halt, so the surviving republishers rebalance the ring.
	ActionKillRepublisher   = "kill_republisher"
	ActionReviveRepublisher = "revive_republisher"
	ActionDrainRepublisher  = "drain_republisher"
)

var validActions = map[string]bool{
	ActionKillSource: true, ActionReviveSource: true,
	ActionPartitionSite: true, ActionHealSite: true,
	ActionDirectoryDown: true, ActionDirectoryUp: true,
	ActionLatencySpike: true, ActionLatencyClear: true,
	ActionDriverErrors: true, ActionDriverErrorsClear: true,
	ActionRestartGateway:  true,
	ActionStallSubscriber: true, ActionKillSubscriber: true,
	ActionKillRepublisher: true, ActionReviveRepublisher: true,
	ActionDrainRepublisher: true,
}

var validModes = map[string]bool{"cached": true, "real-time": true, "historical": true}

// assertionKeys are the recognised assertion names; see assert.go for their
// semantics. Rates are fractions in [0,1], *_ms are milliseconds, min_*
// counters compare against scraped gateway totals.
var assertionKeys = map[string]bool{
	"max_error_rate":         true,
	"max_p99_ms":             true,
	"max_p95_ms":             true,
	"min_throughput_rps":     true,
	"min_requests":           true,
	"min_degraded_share":     true,
	"min_stale_serves":       true,
	"min_history_fallbacks":  true,
	"min_coalesced":          true,
	"min_breaker_opens":      true,
	"min_hedges":             true,
	"min_plan_cache_hits":    true,
	"max_shed_rate":          true,
	"min_replayed_records":   true,
	"min_wal_appends":        true,
	"min_rows_published":     true,
	"min_rows_dropped":       true,
	"max_row_drop_rate":      true,
	"min_sub_evictions":      true,
	"min_sink_breaker_opens": true,
	// Hierarchical federation: republisher region answers, entry-router
	// republisher routing, and the fan-out ceiling (a fan-out query may
	// touch at most this many remote legs — with republishers that is the
	// republisher count, not the site count).
	"min_repub_region_queries": true,
	"min_repub_routes":         true,
	"min_repub_fallthroughs":   true,
	"min_repub_live_rows":      true,
	"min_repub_rebalances":     true,
	"max_remote_per_fanout":    true,
}

// LoadScenario reads, parses and validates a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// ParseScenario parses scenario YAML and validates the result.
func ParseScenario(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	m := d.rootMap(root)
	sc := &Scenario{
		Name:        d.str(m, "name", ""),
		Description: d.str(m, "description", ""),
		Seed:        d.int64(m, "seed", 1),
		Duration:    d.dur(m, "duration", 2*time.Second),
		Assertions:  map[string]float64{},
	}
	if fm := d.childMap(m, "fleet"); fm != nil {
		for _, item := range d.childList(fm, "sites") {
			im := d.itemMap(item, "fleet.sites")
			tpl := SiteTemplate{
				Name:                  d.str(im, "name", ""),
				Count:                 d.intVal(im, "count", 1),
				Sources:               d.intVal(im, "sources", 4),
				Hosts:                 d.intVal(im, "hosts", 2),
				Weight:                d.intVal(im, "weight", 1),
				CacheTTL:              d.dur(im, "cache_ttl", 0),
				StaleGrace:            d.dur(im, "stale_grace", 0),
				HarvestTimeout:        d.dur(im, "harvest_timeout", 0),
				QueryTimeout:          d.dur(im, "query_timeout", 0),
				BreakerThreshold:      d.intVal(im, "breaker_threshold", 0),
				BreakerCooldown:       d.dur(im, "breaker_cooldown", 0),
				MaxConcurrentHarvests: d.intVal(im, "max_concurrent_harvests", 0),
				ProbeInterval:         d.dur(im, "probe_interval", 0),
				DisableHistory:        d.boolVal(im, "disable_history", false),
				DisableCoalescing:     d.boolVal(im, "disable_coalescing", false),
				DurableHistory:        d.boolVal(im, "durable_history", false),
				HistoryFsync:          d.str(im, "history_fsync", ""),
				SubscribeQueue:        d.intVal(im, "subscribe_queue", 0),
				SubscribeStall:        d.dur(im, "subscribe_stall", 0),
			}
			d.noExtra(im, "fleet.sites")
			sc.Fleet.Sites = append(sc.Fleet.Sites, tpl)
		}
		d.noExtra(fm, "fleet")
	}
	if fm := d.childMap(m, "federation"); fm != nil {
		sc.Federation = FederationSpec{
			Enabled:       d.boolVal(fm, "enabled", true),
			Directories:   d.intVal(fm, "directories", 1),
			LookupTTL:     d.dur(fm, "lookup_ttl", 250*time.Millisecond),
			HedgeAfter:    d.dur(fm, "hedge_after", 0),
			RetryAttempts: d.intVal(fm, "retry_attempts", 0),
			EntrySite:     d.str(fm, "entry_site", ""),
			Republishers:  d.intVal(fm, "republishers", 0),
			RepubRefresh:  d.dur(fm, "repub_refresh", 200*time.Millisecond),
			RepubScrape:   d.dur(fm, "repub_scrape", 300*time.Millisecond),
		}
		d.noExtra(fm, "federation")
	}
	sc.Load = LoadSpec{Clients: 4, Transport: "inproc"}
	if lm := d.childMap(m, "load"); lm != nil {
		sc.Load = LoadSpec{
			Clients:         d.intVal(lm, "clients", 4),
			Transport:       d.str(lm, "transport", "inproc"),
			ThinkTime:       d.dur(lm, "think_time", 0),
			SourcesPerQuery: d.intVal(lm, "sources_per_query", 0),
			MaxInFlight:     d.intVal(lm, "max_in_flight", 0),
			MaxQueue:        d.intVal(lm, "max_queue", 0),
			Subscribers:     d.intVal(lm, "subscribers", 0),
			SubscriberSQL:   d.str(lm, "subscriber_sql", ""),
			DeadSink:        d.boolVal(lm, "dead_sink", false),
		}
		for _, item := range d.childList(lm, "mix") {
			im := d.itemMap(item, "load.mix")
			mix := MixEntry{
				Mode:   d.str(im, "mode", "cached"),
				Scope:  d.str(im, "scope", ScopeLocal),
				Table:  d.str(im, "table", "Processor"),
				SQL:    d.str(im, "sql", ""),
				Weight: d.intVal(im, "weight", 1),
			}
			d.noExtra(im, "load.mix")
			sc.Load.Mix = append(sc.Load.Mix, mix)
		}
		d.noExtra(lm, "load")
	}
	for _, item := range d.childList(m, "events") {
		im := d.itemMap(item, "events")
		ev := EventSpec{
			At:          d.dur(im, "at", 0),
			Action:      d.str(im, "action", ""),
			Site:        d.str(im, "site", ""),
			Count:       d.intVal(im, "count", 1),
			Latency:     d.dur(im, "latency", 0),
			ErrorEvery:  d.intVal(im, "error_every", 1),
			Directory:   d.intVal(im, "directory", 0),
			Republisher: d.intVal(im, "republisher", 1),
		}
		d.noExtra(im, "events")
		sc.Events = append(sc.Events, ev)
	}
	if am := d.childMap(m, "assertions"); am != nil {
		for k := range am {
			sc.Assertions[k] = d.float(am, k, 0)
		}
	}
	d.noExtra(m, "")
	if d.err != nil {
		return nil, d.err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// SiteNames expands the templates into the ordered list of site instance
// names, the order sites are created in and the identity events resolve
// targets against.
func (f FleetSpec) SiteNames() []string {
	var names []string
	for _, tpl := range f.Sites {
		names = append(names, tpl.Instances()...)
	}
	return names
}

// Instances returns the instance names one template expands to.
func (t SiteTemplate) Instances() []string {
	if t.Count <= 1 {
		return []string{t.Name}
	}
	names := make([]string, t.Count)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", t.Name, i+1)
	}
	return names
}

// Validate checks scenario semantics beyond YAML shape.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	if len(s.Fleet.Sites) == 0 {
		return fmt.Errorf("scenario: fleet.sites must declare at least one template")
	}
	seen := map[string]bool{}
	totalWeight := 0
	for i, tpl := range s.Fleet.Sites {
		at := fmt.Sprintf("fleet.sites[%d]", i)
		if tpl.Name == "" {
			return fmt.Errorf("scenario: %s: name is required", at)
		}
		if tpl.Count < 1 || tpl.Sources < 1 || tpl.Hosts < 1 {
			return fmt.Errorf("scenario: %s: count, sources and hosts must be >= 1", at)
		}
		if tpl.Weight < 0 {
			return fmt.Errorf("scenario: %s: weight must be >= 0", at)
		}
		if seen[tpl.Name] {
			return fmt.Errorf("scenario: duplicate site template %q", tpl.Name)
		}
		if tpl.HistoryFsync != "" && !tsdb.ValidFsync(tpl.HistoryFsync) {
			return fmt.Errorf("scenario: %s: history_fsync must be always, interval or off, got %q", at, tpl.HistoryFsync)
		}
		seen[tpl.Name] = true
		totalWeight += tpl.Weight * tpl.Count
	}
	sites := s.SiteNames()
	if s.Load.Clients < 1 {
		return fmt.Errorf("scenario: load.clients must be >= 1")
	}
	if s.Load.Transport != "inproc" && s.Load.Transport != "http" {
		return fmt.Errorf("scenario: load.transport must be inproc or http, got %q", s.Load.Transport)
	}
	if s.Load.SourcesPerQuery < 0 {
		return fmt.Errorf("scenario: load.sources_per_query must be >= 0")
	}
	if s.Load.MaxInFlight < 0 || s.Load.MaxQueue < 0 {
		return fmt.Errorf("scenario: load.max_in_flight and load.max_queue must be >= 0")
	}
	if s.Load.Subscribers < 0 {
		return fmt.Errorf("scenario: load.subscribers must be >= 0")
	}
	if s.Load.Subscribers > 0 {
		if s.Load.SubscriberSQL == "" {
			s.Load.SubscriberSQL = "SELECT * FROM Processor"
		}
		q, err := sqlparse.Parse(s.Load.SubscriberSQL)
		if err != nil {
			return fmt.Errorf("scenario: load.subscriber_sql: %v", err)
		}
		if q.Aggregate() || len(q.GroupBy) > 0 {
			return fmt.Errorf("scenario: load.subscriber_sql: continuous queries cannot aggregate")
		}
	} else if s.Load.SubscriberSQL != "" {
		return fmt.Errorf("scenario: load.subscriber_sql needs load.subscribers >= 1")
	}
	if len(s.Load.Mix) == 0 {
		s.Load.Mix = []MixEntry{{Mode: "cached", Scope: ScopeLocal, Table: "Processor", Weight: 1}}
	}
	for i, mix := range s.Load.Mix {
		at := fmt.Sprintf("load.mix[%d]", i)
		if !validModes[mix.Mode] {
			return fmt.Errorf("scenario: %s: unknown mode %q", at, mix.Mode)
		}
		switch mix.Scope {
		case ScopeLocal:
		case ScopeRemote, ScopeFanout:
			if !s.Federation.Enabled {
				return fmt.Errorf("scenario: %s: scope %q needs federation.enabled", at, mix.Scope)
			}
			if mix.Scope == ScopeRemote && len(sites) < 2 {
				return fmt.Errorf("scenario: %s: scope remote needs at least two sites", at)
			}
		default:
			return fmt.Errorf("scenario: %s: unknown scope %q", at, mix.Scope)
		}
		if mix.Weight < 1 {
			return fmt.Errorf("scenario: %s: weight must be >= 1", at)
		}
		if mix.SQL != "" {
			q, err := sqlparse.Parse(mix.SQL)
			if err != nil {
				return fmt.Errorf("scenario: %s: sql: %v", at, err)
			}
			// Keep Table coherent with the query so priming and event
			// targeting see the table the clients will actually hit.
			s.Load.Mix[i].Table = q.Table
		}
	}
	if s.Federation.Enabled {
		if s.Federation.Directories < 1 {
			return fmt.Errorf("scenario: federation.directories must be >= 1")
		}
		if s.Federation.EntrySite != "" && !containsString(sites, s.Federation.EntrySite) {
			return fmt.Errorf("scenario: federation.entry_site %q is not a site instance", s.Federation.EntrySite)
		}
		if totalWeight == 0 {
			return fmt.Errorf("scenario: all site weights are zero")
		}
		if s.Federation.Republishers < 0 {
			return fmt.Errorf("scenario: federation.republishers must be >= 0")
		}
	} else if s.Federation.Republishers > 0 {
		return fmt.Errorf("scenario: federation.republishers needs federation.enabled")
	}
	templates := map[string]bool{}
	for _, tpl := range s.Fleet.Sites {
		templates[tpl.Name] = true
	}
	for i, ev := range s.Events {
		at := fmt.Sprintf("events[%d]", i)
		if !validActions[ev.Action] {
			return fmt.Errorf("scenario: %s: unknown action %q", at, ev.Action)
		}
		if ev.At < 0 || ev.At > s.Duration {
			return fmt.Errorf("scenario: %s: at %s is outside the run duration %s", at, ev.At, s.Duration)
		}
		if ev.Site != "" && !templates[ev.Site] && !containsString(sites, ev.Site) {
			return fmt.Errorf("scenario: %s: site %q matches no template or instance", at, ev.Site)
		}
		switch ev.Action {
		case ActionKillSource, ActionReviveSource:
			if ev.Count < 1 {
				return fmt.Errorf("scenario: %s: count must be >= 1", at)
			}
		case ActionLatencySpike:
			if ev.Latency <= 0 {
				return fmt.Errorf("scenario: %s: latency_spike needs latency > 0", at)
			}
		case ActionDriverErrors:
			if ev.ErrorEvery < 1 {
				return fmt.Errorf("scenario: %s: error_every must be >= 1", at)
			}
		case ActionPartitionSite, ActionHealSite:
			if !s.Federation.Enabled {
				return fmt.Errorf("scenario: %s: %s needs federation.enabled (sites have no network edge without it)", at, ev.Action)
			}
		case ActionStallSubscriber, ActionKillSubscriber:
			if s.Load.Subscribers < 1 {
				return fmt.Errorf("scenario: %s: %s needs load.subscribers >= 1", at, ev.Action)
			}
			if ev.Count < 1 {
				return fmt.Errorf("scenario: %s: count must be >= 1", at)
			}
			if ev.Site != "" {
				return fmt.Errorf("scenario: %s: %s targets entry-gateway subscribers, not sites", at, ev.Action)
			}
		case ActionDirectoryDown, ActionDirectoryUp:
			if !s.Federation.Enabled {
				return fmt.Errorf("scenario: %s: %s needs federation.enabled", at, ev.Action)
			}
			if ev.Directory < 0 || ev.Directory >= s.Federation.Directories {
				return fmt.Errorf("scenario: %s: directory %d out of range [0,%d)", at, ev.Directory, s.Federation.Directories)
			}
		case ActionKillRepublisher, ActionReviveRepublisher, ActionDrainRepublisher:
			if !s.Federation.Enabled || s.Federation.Republishers < 1 {
				return fmt.Errorf("scenario: %s: %s needs federation.republishers >= 1", at, ev.Action)
			}
			if ev.Republisher < 1 || ev.Republisher > s.Federation.Republishers {
				return fmt.Errorf("scenario: %s: republisher %d out of range [1,%d]", at, ev.Republisher, s.Federation.Republishers)
			}
		}
	}
	keys := make([]string, 0, len(s.Assertions))
	for k := range s.Assertions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !assertionKeys[k] {
			return fmt.Errorf("scenario: unknown assertion %q", k)
		}
		if s.Assertions[k] < 0 {
			return fmt.Errorf("scenario: assertion %s must be >= 0", k)
		}
	}
	return nil
}

// SiteNames is the resolved instance list; see FleetSpec.SiteNames.
func (s *Scenario) SiteNames() []string { return s.Fleet.SiteNames() }

// EntrySite resolves the site clients talk to.
func (s *Scenario) EntrySite() string {
	if s.Federation.EntrySite != "" {
		return s.Federation.EntrySite
	}
	return s.SiteNames()[0]
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// decoder converts the parser's string-leaf tree into typed fields,
// recording the first error and rejecting unknown keys so typos in
// scenarios fail validation instead of being silently ignored.
type decoder struct {
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("scenario: "+format, args...)
	}
}

func (d *decoder) rootMap(v any) map[string]any {
	m, ok := v.(map[string]any)
	if !ok {
		d.fail("top level must be a map")
		return map[string]any{}
	}
	return m
}

// childMap pops key as a nested map (nil when absent).
func (d *decoder) childMap(m map[string]any, key string) map[string]any {
	v, ok := m[key]
	if !ok {
		return nil
	}
	delete(m, key)
	child, ok := v.(map[string]any)
	if !ok {
		d.fail("%s must be a map", key)
		return map[string]any{}
	}
	return child
}

// childList pops key as a nested list (nil when absent).
func (d *decoder) childList(m map[string]any, key string) []any {
	v, ok := m[key]
	if !ok {
		return nil
	}
	delete(m, key)
	list, ok := v.([]any)
	if !ok {
		d.fail("%s must be a list", key)
		return nil
	}
	return list
}

func (d *decoder) itemMap(v any, at string) map[string]any {
	m, ok := v.(map[string]any)
	if !ok {
		d.fail("%s items must be maps", at)
		return map[string]any{}
	}
	return m
}

func (d *decoder) scalar(m map[string]any, key string) (string, bool) {
	v, ok := m[key]
	if !ok {
		return "", false
	}
	delete(m, key)
	s, ok := v.(string)
	if !ok {
		d.fail("%s must be a scalar", key)
		return "", false
	}
	return s, true
}

func (d *decoder) str(m map[string]any, key, def string) string {
	if s, ok := d.scalar(m, key); ok {
		return s
	}
	return def
}

func (d *decoder) intVal(m map[string]any, key string, def int) int {
	s, ok := d.scalar(m, key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		d.fail("%s: %q is not an integer", key, s)
		return def
	}
	return n
}

func (d *decoder) int64(m map[string]any, key string, def int64) int64 {
	s, ok := d.scalar(m, key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.fail("%s: %q is not an integer", key, s)
		return def
	}
	return n
}

func (d *decoder) float(m map[string]any, key string, def float64) float64 {
	s, ok := d.scalar(m, key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail("%s: %q is not a number", key, s)
		return def
	}
	return f
}

func (d *decoder) boolVal(m map[string]any, key string, def bool) bool {
	s, ok := d.scalar(m, key)
	if !ok {
		return def
	}
	switch strings.ToLower(s) {
	case "true", "yes", "on":
		return true
	case "false", "no", "off":
		return false
	}
	d.fail("%s: %q is not a boolean", key, s)
	return def
}

// dur parses "250ms"/"5s" style durations; a bare number is seconds.
func (d *decoder) dur(m map[string]any, key string, def time.Duration) time.Duration {
	s, ok := d.scalar(m, key)
	if !ok {
		return def
	}
	if n, err := strconv.Atoi(s); err == nil {
		return time.Duration(n) * time.Second
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		d.fail("%s: %q is not a duration", key, s)
		return def
	}
	return v
}

// noExtra rejects keys the schema does not know.
func (d *decoder) noExtra(m map[string]any, at string) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if at != "" {
		at += "."
	}
	d.fail("unknown key %s%s", at, keys[0])
}
