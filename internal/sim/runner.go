package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/web"
)

// RunOptions tunes a scenario run without editing the scenario.
type RunOptions struct {
	// Seed overrides the scenario's seed (0 keeps it). The whole run —
	// fleet, event targets, client query sequences — is a function of
	// (scenario, seed).
	Seed int64
	// Duration overrides the scenario's load duration (0 keeps it). Event
	// times scale proportionally, so a shortened CI run keeps the
	// scenario's shape: an event at 5s of 10s fires at 2.5s of 5s.
	Duration time.Duration
	// Log, when set, receives progress lines (the CLI's -v).
	Log func(format string, args ...any)
}

// Run executes a scenario end to end and returns its report. The report is
// produced even when assertions fail (Passed says which); an error means
// the run itself could not be performed.
func Run(sc *Scenario, opts RunOptions) (*Report, error) {
	seed := sc.Seed
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	duration := sc.Duration
	if opts.Duration > 0 {
		duration = opts.Duration
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// One seeded source drives everything, consumed in a fixed order:
	// fleet generation, event-target resolution, then one child seed per
	// client. Replaying with the same (scenario, seed) replays the run.
	rng := rand.New(rand.NewSource(seed))
	h, err := NewHarness(sc, rng)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	logf("fleet up: %d sites, %d sources, %d hosts",
		len(h.SiteOrder), h.Fleet.TotalSources(), h.Fleet.TotalHosts())

	plan, err := PlanEvents(sc, h.Fleet, rng)
	if err != nil {
		return nil, err
	}
	scale := 1.0
	if duration != sc.Duration {
		scale = float64(duration) / float64(sc.Duration)
	}
	clientSeeds := make([]int64, sc.Load.Clients)
	for i := range clientSeeds {
		clientSeeds[i] = rng.Int63()
	}

	if err := prime(h); err != nil {
		return nil, fmt.Errorf("sim: priming pass: %w", err)
	}
	if sc.Load.Subscribers > 0 {
		if err := h.StartSubscribers(sc.Load.Subscribers, sc.Load.SubscriberSQL); err != nil {
			return nil, fmt.Errorf("sim: subscribers: %w", err)
		}
		logf("continuous queries: %d subscribers on %q", sc.Load.Subscribers, sc.Load.SubscriberSQL)
	}
	logf("fleet primed; running %d clients for %s (%d events planned)",
		sc.Load.Clients, duration, len(plan))

	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	var eventWG sync.WaitGroup
	eventWG.Add(1)
	go func() {
		defer eventWG.Done()
		for _, pe := range plan {
			at := time.Duration(float64(pe.At) * scale)
			wait := at - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return
				}
			}
			if err := pe.Fire(h); err != nil {
				logf("event error: %v", err)
			} else {
				logf("event: %s", pe)
			}
		}
	}()

	workers := make([]*clientWorker, sc.Load.Clients)
	var wg sync.WaitGroup
	deadline := start.Add(duration)
	for i := range workers {
		w := newClientWorker(h, sc, clientSeeds[i])
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(ctx, deadline)
		}()
	}
	wg.Wait()
	cancel()
	eventWG.Wait()
	elapsed := time.Since(start)

	hist := newLatencyHistogram()
	var requests, errors int64
	for _, w := range workers {
		hist.merge(w.hist)
		requests += w.requests
		errors += w.errors
	}
	counters, metrics := h.scrapeCounters()

	r := &Report{
		Scenario:    sc.Name,
		Description: sc.Description,
		Seed:        seed,
		DurationMS:  float64(elapsed) / float64(time.Millisecond),
		Fleet: FleetSummary{
			Sites:   len(h.SiteOrder),
			Sources: h.Fleet.TotalSources(),
			Hosts:   h.Fleet.TotalHosts(),
		},
		Load: LoadSummary{
			Clients:       sc.Load.Clients,
			Transport:     sc.Load.Transport,
			Requests:      requests,
			Errors:        errors,
			ThroughputRPS: float64(requests) / elapsed.Seconds(),
		},
		Latency:  hist.summaries(),
		Counters: counters,
		Metrics:  metrics,
	}
	if requests > 0 {
		r.Load.ErrorRate = float64(errors) / float64(requests)
	}
	for _, pe := range plan {
		r.Events = append(r.Events, EventRecord{
			AtMs:    float64(time.Duration(float64(pe.At)*scale)) / float64(time.Millisecond),
			Action:  pe.Action,
			Targets: pe.Targets,
			Detail:  pe.Detail,
		})
	}
	r.Assertions = evalAssertions(sc, r)
	r.Passed = true
	for _, a := range r.Assertions {
		if !a.OK {
			r.Passed = false
		}
	}
	return r, nil
}

// prime runs one clean real-time pass against every gateway so caches and
// the historical store hold a good sample before any fault fires — the
// degradation ladder has something to fall back on, as a warmed production
// gateway would.
func prime(h *Harness) error {
	for _, site := range h.SiteOrder {
		gw := h.SiteGateway(site)
		for _, table := range []string{"Processor", "Memory"} {
			_, err := gw.QueryContext(context.Background(), core.QueryOptions{
				Principal: SimPrincipal,
				SQL:       "SELECT * FROM " + table,
				Mode:      core.ModeRealTime,
			})
			if err != nil {
				return fmt.Errorf("%s: %w", site, err)
			}
		}
	}
	return nil
}

// clientWorker is one load generator: its own rng (seeded from the root),
// its own latency histogram, merged after the run.
type clientWorker struct {
	h    *Harness
	sc   *Scenario
	rng  *rand.Rand
	hist *latencyHistogram

	httpClient *web.Client
	mixPick    func(*rand.Rand) MixEntry
	sitePick   func(*rand.Rand) string // weighted remote site, "" when none
	entryURLs  []string                // entry-site source URLs for subsetting

	requests int64
	errors   int64
}

func newClientWorker(h *Harness, sc *Scenario, seed int64) *clientWorker {
	w := &clientWorker{
		h:       h,
		sc:      sc,
		rng:     rand.New(rand.NewSource(seed)),
		hist:    newLatencyHistogram(),
		mixPick: mixPicker(sc.Load.Mix),
	}
	if sc.Load.Transport == "http" {
		w.httpClient = &web.Client{BaseURL: h.Entry.Server.URL(), Principal: SimPrincipal}
	}
	w.sitePick = remoteSitePicker(sc, h.Entry.Name)
	for _, src := range h.Fleet.SiteSources(h.Entry.Name) {
		w.entryURLs = append(w.entryURLs, src.URL)
	}
	return w
}

// mixPicker builds a weighted chooser over the mix entries.
func mixPicker(mix []MixEntry) func(*rand.Rand) MixEntry {
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	return func(rng *rand.Rand) MixEntry {
		n := rng.Intn(total)
		for _, m := range mix {
			n -= m.Weight
			if n < 0 {
				return m
			}
		}
		return mix[len(mix)-1]
	}
}

// remoteSitePicker builds a template-weight-weighted chooser over the
// non-entry sites.
func remoteSitePicker(sc *Scenario, entry string) func(*rand.Rand) string {
	var sites []string
	var weights []int
	total := 0
	for _, tpl := range sc.Fleet.Sites {
		for _, site := range tpl.Instances() {
			if site == entry || tpl.Weight == 0 {
				continue
			}
			sites = append(sites, site)
			weights = append(weights, tpl.Weight)
			total += tpl.Weight
		}
	}
	return func(rng *rand.Rand) string {
		if total == 0 {
			return ""
		}
		n := rng.Intn(total)
		for i, site := range sites {
			n -= weights[i]
			if n < 0 {
				return site
			}
		}
		return sites[len(sites)-1]
	}
}

func (w *clientWorker) run(ctx context.Context, deadline time.Time) {
	for ctx.Err() == nil && time.Now().Before(deadline) {
		mix := w.mixPick(w.rng)
		req := w.buildRequest(mix)
		label := mix.Label()
		begin := time.Now()
		err := w.execute(req)
		w.hist.record(label, time.Since(begin))
		w.requests++
		if err != nil {
			w.errors++
		}
		if w.sc.Load.ThinkTime > 0 {
			select {
			case <-time.After(w.sc.Load.ThinkTime):
			case <-ctx.Done():
			}
		}
	}
}

func (w *clientWorker) buildRequest(mix MixEntry) core.QueryOptions {
	sql := "SELECT * FROM " + mix.Table
	if mix.SQL != "" {
		sql = mix.SQL
	}
	req := core.QueryOptions{
		Principal: SimPrincipal,
		SQL:       sql,
		Mode:      queryMode(mix.Mode),
	}
	switch mix.Scope {
	case ScopeRemote:
		req.Site = w.sitePick(w.rng)
	case ScopeFanout:
		req.Site = core.AllSites
	}
	if n := w.sc.Load.SourcesPerQuery; n > 0 && req.Site == "" {
		if mix.Mode == "historical" {
			n = 1 // historical queries accept at most one source filter
		}
		req.Sources = w.pickSources(n)
	}
	return req
}

// pickSources draws n distinct entry-site source URLs.
func (w *clientWorker) pickSources(n int) []string {
	if n >= len(w.entryURLs) {
		return append([]string(nil), w.entryURLs...)
	}
	picked := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for len(picked) < n {
		i := w.rng.Intn(len(w.entryURLs))
		if !seen[i] {
			seen[i] = true
			picked = append(picked, w.entryURLs[i])
		}
	}
	return picked
}

func (w *clientWorker) execute(req core.QueryOptions) error {
	ctx := context.Background()
	if w.httpClient != nil {
		_, err := w.httpClient.Query(ctx, req)
		return err
	}
	_, err := w.h.EntryGateway().QueryContext(ctx, req)
	return err
}

func queryMode(mode string) core.Mode {
	switch mode {
	case "real-time":
		return core.ModeRealTime
	case "historical":
		return core.ModeHistorical
	default:
		return core.ModeCached
	}
}
