package sim

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLNested(t *testing.T) {
	doc := `
# scenario header
name: baseline
fleet:
  sites:
    - name: edge      # inline comment
      count: 3
      sources: 10
    - name: core
      count: 1
      sources: '25'
load:
  clients: 8
  mix:
    - mode: cached
      weight: 80
    - mode: real-time
      weight: 20
events:
  - at: 5s
    action: kill_source
assertions:
  max_error_rate: 0.01
notes: "a: quoted # value"
empty:
tags:
  - one
  - two
`
	got, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name": "baseline",
		"fleet": map[string]any{
			"sites": []any{
				map[string]any{"name": "edge", "count": "3", "sources": "10"},
				map[string]any{"name": "core", "count": "1", "sources": "25"},
			},
		},
		"load": map[string]any{
			"clients": "8",
			"mix": []any{
				map[string]any{"mode": "cached", "weight": "80"},
				map[string]any{"mode": "real-time", "weight": "20"},
			},
		},
		"events": []any{
			map[string]any{"at": "5s", "action": "kill_source"},
		},
		"assertions": map[string]any{"max_error_rate": "0.01"},
		"notes":      "a: quoted # value",
		"empty":      "",
		"tags":       []any{"one", "two"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseYAML mismatch\n got: %#v\nwant: %#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"tab indent", "a:\n\tb: 1", "tabs"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"bare scalar", "a: 1\njust a scalar line", "key: value"},
		{"stray indent", "a: 1\n    b: 2", "unexpected indentation"},
		{"empty list item", "xs:\n  -\nb: 1", "empty list item"},
		{"list under key line", "a: 1\n- b", "list item where a key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseYAMLEmpty(t *testing.T) {
	got, err := parseYAML([]byte("\n# only comments\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got.(map[string]any)
	if !ok || len(m) != 0 {
		t.Errorf("empty doc = %#v, want empty map", got)
	}
}
