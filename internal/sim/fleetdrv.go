package sim

import (
	"context"
	"fmt"
	"sync/atomic"

	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/sqlparse"
)

// FleetDriver name and URL protocol.
const (
	FleetDriverName = "gridrm-fleet"
	FleetProtocol   = "fleet"
)

// FleetDriver is the in-memory GridRM driver the simulator registers with
// every gateway. It resolves the URL host against the shared Fleet and
// serves Processor and Memory rows for that source's hosts; a killed source
// refuses connects, pings and queries, so the real breaker/degradation
// machinery reacts exactly as it would to a dead agent. The harness wraps
// it in faultdrv per site, which layers latency, error and panic injection
// on top.
type FleetDriver struct {
	fleet *Fleet
}

// NewFleetDriver creates a driver over the fleet. Gateways must not share
// driver instances' registrations, so the harness creates one per gateway —
// all views of the same Fleet.
func NewFleetDriver(fleet *Fleet) *FleetDriver { return &FleetDriver{fleet: fleet} }

// Name implements driver.Driver.
func (d *FleetDriver) Name() string { return FleetDriverName }

// Version implements driver.Versioned.
func (d *FleetDriver) Version() string { return "sim" }

// AcceptsURL implements driver.Driver.
func (d *FleetDriver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	if err != nil {
		return false
	}
	return u.Protocol == "" || u.Protocol == FleetProtocol
}

// Connect implements driver.Driver.
func (d *FleetDriver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	u, err := driver.ParseURL(url)
	if err != nil {
		return nil, err
	}
	src, ok := d.fleet.Source(url)
	if !ok {
		// Accept lookup by host too, so URLs with a path or port still
		// resolve to the canonical source.
		for _, site := range d.fleet.Sites() {
			for _, s := range d.fleet.SiteSources(site) {
				if s.Name == u.Host {
					src = s
					ok = true
				}
			}
		}
	}
	if !ok {
		return nil, fmt.Errorf("fleetdrv: unknown source %q", u.Host)
	}
	if src.Down() {
		return nil, fmt.Errorf("fleetdrv: %s: connection refused (source down)", src.Name)
	}
	return &fleetConn{src: src, url: url}, nil
}

// Schema returns the driver's GLUE mapping (Processor and Memory).
func (d *FleetDriver) Schema() *schema.DriverSchema {
	return &schema.DriverSchema{
		Driver: FleetDriverName,
		Groups: map[string]*schema.GroupMapping{
			glue.GroupProcessor: {Group: glue.GroupProcessor, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "LoadLast1Min", Native: "load"},
			}},
			glue.GroupMemory: {Group: glue.GroupMemory, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "RAMSize", Native: "ram"},
				{GLUEField: "RAMAvailable", Native: "ram_free"},
			}},
		},
	}
}

type fleetConn struct {
	driver.UnimplementedConn
	src    *FleetSource
	url    string
	closed atomic.Bool
}

func (c *fleetConn) URL() string    { return c.url }
func (c *fleetConn) Driver() string { return FleetDriverName }

func (c *fleetConn) Ping() error {
	if c.closed.Load() {
		return driver.ErrClosed
	}
	if c.src.Down() {
		return fmt.Errorf("fleetdrv: %s: source down", c.src.Name)
	}
	return nil
}

func (c *fleetConn) Close() error {
	c.closed.Store(true)
	return nil
}

func (c *fleetConn) CreateStatement() (driver.Stmt, error) {
	if c.closed.Load() {
		return nil, driver.ErrClosed
	}
	return &fleetStmt{c: c}, nil
}

type fleetStmt struct {
	driver.UnimplementedStmt
	c *fleetConn
}

var _ driver.StmtContext = (*fleetStmt)(nil)

func (s *fleetStmt) Close() error { return nil }

func (s *fleetStmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	return s.ExecuteQueryContext(context.Background(), sql)
}

// ExecuteQueryContext implements driver.StmtContext.
func (s *fleetStmt) ExecuteQueryContext(ctx context.Context, sql string) (*resultset.ResultSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	src := s.c.src
	if src.Down() {
		return nil, fmt.Errorf("fleetdrv: %s: query failed (source down)", src.Name)
	}
	n := src.queries.Add(1)
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	g, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("fleetdrv: unknown group %q", q.Table)
	}
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	// Load wobbles deterministically with the source's own query count, so
	// consecutive harvests see movement without any global randomness.
	load := src.BaseLoad + 0.1*float64(n%5)
	rb := resultset.NewBuilder(meta)
	for _, h := range src.Hosts {
		row := make([]any, len(g.Fields))
		switch g.Name {
		case glue.GroupProcessor:
			row[g.FieldIndex("HostName")] = h
			row[g.FieldIndex("LoadLast1Min")] = load
		case glue.GroupMemory:
			row[g.FieldIndex("HostName")] = h
			row[g.FieldIndex("RAMSize")] = src.RAMMB
			row[g.FieldIndex("RAMAvailable")] = src.RAMMB / 2
		default:
			return nil, fmt.Errorf("fleetdrv: unsupported group %q", g.Name)
		}
		rb.Append(row...)
	}
	full, err := rb.Build()
	if err != nil {
		return nil, err
	}
	return sqlparse.ApplyToResultSet(q, full)
}
