package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"gridrm/internal/driver"
)

func testFleetSpec() FleetSpec {
	return FleetSpec{Sites: []SiteTemplate{
		{Name: "edge", Count: 2, Sources: 3, Hosts: 2, Weight: 1},
		{Name: "core", Count: 1, Sources: 5, Hosts: 1, Weight: 1},
	}}
}

func TestGenerateFleetDeterministic(t *testing.T) {
	a := GenerateFleet(testFleetSpec(), rand.New(rand.NewSource(42)))
	b := GenerateFleet(testFleetSpec(), rand.New(rand.NewSource(42)))
	if !reflect.DeepEqual(a.Sites(), b.Sites()) {
		t.Fatalf("site order differs: %v vs %v", a.Sites(), b.Sites())
	}
	if a.TotalSources() != 11 || a.TotalHosts() != 17 {
		t.Errorf("sizes = %d sources %d hosts", a.TotalSources(), a.TotalHosts())
	}
	for _, site := range a.Sites() {
		sa, sb := a.SiteSources(site), b.SiteSources(site)
		for i := range sa {
			if sa[i].URL != sb[i].URL || sa[i].BaseLoad != sb[i].BaseLoad || sa[i].RAMMB != sb[i].RAMMB {
				t.Errorf("source %d of %s differs: %+v vs %+v", i, site, sa[i], sb[i])
			}
		}
	}
	c := GenerateFleet(testFleetSpec(), rand.New(rand.NewSource(43)))
	same := true
	for _, site := range a.Sites() {
		for i, src := range a.SiteSources(site) {
			if src.BaseLoad != c.SiteSources(site)[i].BaseLoad {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical source attributes")
	}
}

func TestFleetKillRevive(t *testing.T) {
	f := GenerateFleet(testFleetSpec(), rand.New(rand.NewSource(1)))
	url := f.SiteSources("edge-1")[0].URL
	if !f.SetDown(url, true) {
		t.Fatal("SetDown failed for known source")
	}
	if f.DownCount() != 1 {
		t.Errorf("DownCount = %d", f.DownCount())
	}
	src, _ := f.Source(url)
	if !src.Down() {
		t.Error("source not down")
	}
	f.SetDown(url, false)
	if f.DownCount() != 0 || src.Down() {
		t.Error("revive did not take")
	}
	if f.SetDown("gridrm:fleet://nope", true) {
		t.Error("SetDown accepted unknown source")
	}
}

func TestFleetDriverServesAndFails(t *testing.T) {
	f := GenerateFleet(testFleetSpec(), rand.New(rand.NewSource(1)))
	src := f.SiteSources("core")[0]
	d := NewFleetDriver(f)
	if !d.AcceptsURL(src.URL) {
		t.Fatal("driver rejects its own URL")
	}
	conn, err := d.Connect(src.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	stmt, err := conn.CreateStatement()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stmt.ExecuteQuery("SELECT * FROM Processor")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != len(src.Hosts) {
		t.Errorf("rows = %d, want %d", rs.Len(), len(src.Hosts))
	}
	rs, err = stmt.ExecuteQuery("SELECT * FROM Memory")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != len(src.Hosts) {
		t.Errorf("memory rows = %d, want %d", rs.Len(), len(src.Hosts))
	}

	// Killed: ping and query fail, new connects are refused.
	f.SetDown(src.URL, true)
	if err := conn.Ping(); err == nil {
		t.Error("ping succeeded on killed source")
	}
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err == nil {
		t.Error("query succeeded on killed source")
	}
	if _, err := d.Connect(src.URL, nil); err == nil {
		t.Error("connect succeeded on killed source")
	}
	f.SetDown(src.URL, false)
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
		t.Errorf("query after revive: %v", err)
	}

	// A cancelled context is honoured before any work happens.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := stmt.(driver.StmtContext).ExecuteQueryContext(ctx, "SELECT * FROM Processor"); err == nil {
		t.Error("query ignored cancelled context")
	}
	if _, err := d.Connect("gridrm:fleet://unknown-src", nil); err == nil {
		t.Error("connect succeeded for unknown source")
	}
}

func TestClock(t *testing.T) {
	c := NewClock()
	t0 := c.Now()
	if !t0.Equal(Epoch) {
		t.Errorf("start = %v, want %v", t0, Epoch)
	}
	if got := c.Advance(time.Second); !got.Equal(t0.Add(time.Second)) {
		t.Errorf("Advance = %v", got)
	}
	if got := c.Advance(-time.Hour); !got.Equal(t0.Add(time.Second)) {
		t.Errorf("negative Advance moved time: %v", got)
	}
	if !c.Now().Equal(t0.Add(time.Second)) {
		t.Errorf("Now = %v", c.Now())
	}
}
