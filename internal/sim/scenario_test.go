package sim

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleScenario = `
name: sample
description: two templates, federation, events
seed: 7
duration: 10s
fleet:
  sites:
    - name: edge
      count: 3
      sources: 5
      hosts: 2
      weight: 2
      cache_ttl: 250ms
    - name: core
      count: 1
      sources: 20
      breaker_threshold: 4
federation:
  enabled: true
  directories: 2
  lookup_ttl: 100ms
  entry_site: core
load:
  clients: 6
  transport: http
  think_time: 2ms
  sources_per_query: 3
  mix:
    - mode: cached
      weight: 70
    - mode: real-time
      scope: fanout
      weight: 30
events:
  - at: 2s
    action: kill_source
    site: edge
    count: 2
  - at: 5s
    action: directory_down
    directory: 1
  - at: 6s
    action: latency_spike
    site: core
    latency: 40ms
assertions:
  max_error_rate: 0.05
  min_requests: 100
`

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario([]byte(sampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "sample" || sc.Seed != 7 || sc.Duration != 10*time.Second {
		t.Errorf("header = %q/%d/%s", sc.Name, sc.Seed, sc.Duration)
	}
	if got := sc.SiteNames(); len(got) != 4 || got[0] != "edge-1" || got[3] != "core" {
		t.Errorf("SiteNames = %v", got)
	}
	if sc.EntrySite() != "core" {
		t.Errorf("EntrySite = %q", sc.EntrySite())
	}
	if sc.Fleet.Sites[0].CacheTTL != 250*time.Millisecond || sc.Fleet.Sites[0].Weight != 2 {
		t.Errorf("template 0 = %+v", sc.Fleet.Sites[0])
	}
	if sc.Fleet.Sites[1].BreakerThreshold != 4 || sc.Fleet.Sites[1].Hosts != 2 {
		t.Errorf("template 1 defaults = %+v", sc.Fleet.Sites[1])
	}
	if !sc.Federation.Enabled || sc.Federation.Directories != 2 || sc.Federation.LookupTTL != 100*time.Millisecond {
		t.Errorf("federation = %+v", sc.Federation)
	}
	if sc.Load.Transport != "http" || sc.Load.SourcesPerQuery != 3 || len(sc.Load.Mix) != 2 {
		t.Errorf("load = %+v", sc.Load)
	}
	if sc.Load.Mix[1].Scope != ScopeFanout || sc.Load.Mix[1].Label() != "fanout-real-time" {
		t.Errorf("mix[1] = %+v", sc.Load.Mix[1])
	}
	if len(sc.Events) != 3 || sc.Events[2].Latency != 40*time.Millisecond {
		t.Errorf("events = %+v", sc.Events)
	}
	if sc.Assertions["max_error_rate"] != 0.05 {
		t.Errorf("assertions = %v", sc.Assertions)
	}
}

func TestParseScenarioDefaultsMix(t *testing.T) {
	sc, err := ParseScenario([]byte("name: d\nfleet:\n  sites:\n    - name: a\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Load.Mix) != 1 || sc.Load.Mix[0].Mode != "cached" {
		t.Errorf("default mix = %+v", sc.Load.Mix)
	}
	if sc.Load.Clients != 4 || sc.Duration != 2*time.Second {
		t.Errorf("defaults = clients %d duration %s", sc.Load.Clients, sc.Duration)
	}
}

func TestParseScenarioMixSQL(t *testing.T) {
	doc := "name: s\nfleet:\n  sites:\n    - name: a\n" +
		"load:\n  mix:\n" +
		"    - mode: cached\n      sql: \"SELECT HostName, avg(LoadLast1Min) FROM Memory GROUP BY HostName\"\n" +
		"    - mode: cached\n      sql: \"SELECT HostName FROM Processor LIMIT 5\"\n"
	sc, err := ParseScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	// Table is rewritten from the parsed SQL; aggregate SQL gets its own
	// latency bucket, plain SQL keeps the mode bucket.
	if sc.Load.Mix[0].Table != "Memory" {
		t.Errorf("mix[0].Table = %q, want Memory", sc.Load.Mix[0].Table)
	}
	if got := sc.Load.Mix[0].Label(); got != "cached-agg" {
		t.Errorf("aggregate mix label = %q, want cached-agg", got)
	}
	if got := sc.Load.Mix[1].Label(); got != "cached" {
		t.Errorf("plain sql mix label = %q, want cached", got)
	}
}

func TestParseScenarioSubscribers(t *testing.T) {
	doc := "name: s\nfleet:\n  sites:\n    - name: a\n      subscribe_queue: 32\n      subscribe_stall: 150ms\n" +
		"load:\n  subscribers: 4\n  dead_sink: true\n" +
		"events:\n  - at: 1s\n    action: stall_subscriber\n    count: 2\n" +
		"assertions:\n  min_rows_dropped: 1\n  max_row_drop_rate: 0.5\n"
	sc, err := ParseScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fleet.Sites[0].SubscribeQueue != 32 || sc.Fleet.Sites[0].SubscribeStall != 150*time.Millisecond {
		t.Errorf("subscribe knobs = %+v", sc.Fleet.Sites[0])
	}
	if sc.Load.Subscribers != 4 || !sc.Load.DeadSink {
		t.Errorf("load = %+v", sc.Load)
	}
	// SubscriberSQL defaults when subscribers are requested.
	if sc.Load.SubscriberSQL != "SELECT * FROM Processor" {
		t.Errorf("SubscriberSQL = %q", sc.Load.SubscriberSQL)
	}
}

func TestScenarioValidationErrors(t *testing.T) {
	base := "name: v\nfleet:\n  sites:\n    - name: a\n"
	cases := []struct {
		name, doc, wantErr string
	}{
		{"missing name", "duration: 1s\nfleet:\n  sites:\n    - name: a\n", "name is required"},
		{"no sites", "name: x\n", "at least one template"},
		{"unknown top key", base + "bogus: 1\n", "unknown key bogus"},
		{"unknown site key", "name: x\nfleet:\n  sites:\n    - name: a\n      wat: 2\n", "unknown key fleet.sites.wat"},
		{"bad mode", base + "load:\n  mix:\n    - mode: psychic\n", "unknown mode"},
		{"remote without federation", base + "load:\n  mix:\n    - mode: cached\n      scope: remote\n", "needs federation.enabled"},
		{"bad action", base + "events:\n  - at: 1s\n    action: explode\n", "unknown action"},
		{"event past end", base + "events:\n  - at: 1h\n    action: kill_source\n", "outside the run duration"},
		{"event bad site", base + "events:\n  - at: 1s\n    action: kill_source\n    site: nope\n", "matches no template"},
		{"spike needs latency", base + "events:\n  - at: 1s\n    action: latency_spike\n", "needs latency"},
		{"dir index range", "name: x\nfleet:\n  sites:\n    - name: a\nfederation:\n  directories: 1\nevents:\n  - at: 1s\n    action: directory_down\n    directory: 3\n", "out of range"},
		{"unknown assertion", base + "assertions:\n  min_magic: 1\n", "unknown assertion"},
		{"duplicate template", "name: x\nfleet:\n  sites:\n    - name: a\n    - name: a\n", "duplicate site template"},
		{"bad mix sql", base + "load:\n  mix:\n    - mode: cached\n      sql: \"SELECT * FROM\"\n", "sql:"},
		{"bad entry site", "name: x\nfleet:\n  sites:\n    - name: a\nfederation:\n  entry_site: b\n", "not a site instance"},
		{"subscriber sql without subscribers", base + "load:\n  subscriber_sql: SELECT * FROM Processor\n", "needs load.subscribers"},
		{"aggregate subscriber sql", base + "load:\n  subscribers: 2\n  subscriber_sql: SELECT count(*) FROM Processor\n", "cannot aggregate"},
		{"stall without subscribers", base + "events:\n  - at: 1s\n    action: stall_subscriber\n    count: 1\n", "needs load.subscribers"},
		{"stall with site", base + "load:\n  subscribers: 1\nevents:\n  - at: 1s\n    action: stall_subscriber\n    count: 1\n    site: a\n", "not sites"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestShippedScenariosValidate keeps every scenario in scenarios/ loadable —
// the same check `gridrm-sim validate` performs, run as part of the suite.
func TestShippedScenariosValidate(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected at least 4 shipped scenarios, found %d", len(files))
	}
	for _, f := range files {
		if _, err := LoadScenario(f); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}
