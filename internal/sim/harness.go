package sim

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/breaker"
	"gridrm/internal/core"
	"gridrm/internal/drivers/faultdrv"
	"gridrm/internal/gma"
	"gridrm/internal/health"
	"gridrm/internal/qcache"
	"gridrm/internal/repub"
	"gridrm/internal/router"
	"gridrm/internal/security"
	"gridrm/internal/tsdb"
	"gridrm/internal/web"
)

// SimPrincipal is the principal every simulated client queries as.
var SimPrincipal = security.Principal{Name: "sim", Roles: []string{"operator"}}

// registrarInterval is how often sites refresh their directory records.
const registrarInterval = 250 * time.Millisecond

// SiteRuntime is one running site: a real gateway over the shared fleet,
// its fault-injection knobs, and (under federation) its web server and
// directory registrar.
type SiteRuntime struct {
	Name     string
	Template SiteTemplate
	Gateway  *core.Gateway
	// HistoryDir is the site's crash-safe history directory ("" unless the
	// template sets durable_history). restart_gateway reuses it so the
	// replacement gateway restores the pre-crash samples.
	HistoryDir string
	// Faults is the site's fault-injection layer; latency_spike and
	// driver_errors events turn these knobs.
	Faults *faultdrv.Faults
	// Server is the site's HTTP face (always present on the entry site,
	// on every site under federation). partition_site drops its traffic.
	Server *ChaosServer
	// Registrar keeps the site's producer record fresh (federation only).
	Registrar *gma.Registrar
}

// DirectoryReplica is one GMA directory replica behind a droppable server.
type DirectoryReplica struct {
	Dir    *gma.Directory
	Server *ChaosServer
}

// RepubRuntime is one running republisher gateway (repub-1..repub-N)
// behind a droppable server. kill_republisher severs the server and halts
// the gateway without deregistering — a crash, whose stale registration
// the entry router must fall through; drain_republisher stops it
// gracefully so the survivors rebalance the ring.
type RepubRuntime struct {
	Name    string
	Gateway *repub.Gateway
	Server  *ChaosServer
}

// Harness is a running fleet: every site's gateway wired over one shared
// Fleet, optionally federated through droppable directory replicas and a
// resilient router on the entry site. Chaos tests drive it directly; the
// Runner drives it from a scenario.
type Harness struct {
	Scenario  *Scenario
	Fleet     *Fleet
	Sites     map[string]*SiteRuntime
	SiteOrder []string
	Entry     *SiteRuntime
	Replicas  []*DirectoryReplica
	Repubs    []*RepubRuntime
	MultiDir  *gma.MultiDirectory
	Router    *gma.Router
	opts      HarnessOptions

	// gwMu guards SiteRuntime.Gateway swaps by RestartSite against the
	// client workers reading the entry gateway; use SiteGateway /
	// EntryGateway instead of touching the field during a run.
	gwMu    sync.RWMutex
	tmpRoot string // temp root for durable-history site dirs

	// subMu guards the continuous-query subscriber registry that
	// stall_subscriber / kill_subscriber events act on.
	subMu       sync.Mutex
	subscribers []*simSubscriber
	// deadSink is the black-holed endpoint behind the load.dead_sink HTTP
	// push sink (nil unless the scenario asks for one).
	deadSink *ChaosServer
}

// simSubscriber is one continuous-query consumer: a drain goroutine that
// counts rows until a stall event wedges it or a kill event closes it.
type simSubscriber struct {
	sub       *router.Subscription
	stall     chan struct{}
	stallOnce sync.Once
	stalled   bool // under Harness.subMu
	killed    bool // under Harness.subMu
	rows      atomic.Int64
}

// StartSubscribers opens n continuous queries on the entry gateway, each
// drained by its own goroutine until stalled, killed, evicted, or gateway
// shutdown. Call after priming so the first harvests have someone to feed.
func (h *Harness) StartSubscribers(n int, sql string) error {
	gw := h.EntryGateway()
	for i := 0; i < n; i++ {
		sub, err := gw.Subscribe(context.Background(), core.QueryOptions{
			Principal: SimPrincipal,
			SQL:       sql,
		})
		if err != nil {
			return fmt.Errorf("sim: subscriber %d: %w", i, err)
		}
		ss := &simSubscriber{sub: sub, stall: make(chan struct{})}
		h.subMu.Lock()
		h.subscribers = append(h.subscribers, ss)
		h.subMu.Unlock()
		go ss.drain()
	}
	return nil
}

// drain consumes rows until the subscription ends. A stall abandons the
// channel without closing the subscription — exactly a wedged consumer:
// its bounded queue fills, overflow drops oldest, and the router's stall
// clock eventually evicts it.
func (ss *simSubscriber) drain() {
	for {
		select {
		case <-ss.stall:
			<-ss.sub.Done()
			return
		case <-ss.sub.Done():
			return
		case <-ss.sub.C():
			ss.rows.Add(1)
		}
	}
}

// StallSubscribers wedges up to count live subscribers (stops their drain
// loops, keeps their subscriptions registered) and reports how many.
func (h *Harness) StallSubscribers(count int) int {
	h.subMu.Lock()
	defer h.subMu.Unlock()
	n := 0
	for _, ss := range h.subscribers {
		if n == count {
			break
		}
		if ss.stalled || ss.killed {
			continue
		}
		ss.stalled = true
		ss.stallOnce.Do(func() { close(ss.stall) })
		n++
	}
	return n
}

// KillSubscribers closes up to count live subscribers mid-run and reports
// how many; their drain goroutines exit via Done.
func (h *Harness) KillSubscribers(count int) int {
	h.subMu.Lock()
	defer h.subMu.Unlock()
	n := 0
	for _, ss := range h.subscribers {
		if n == count {
			break
		}
		if ss.stalled || ss.killed {
			continue
		}
		ss.killed = true
		ss.sub.Close()
		n++
	}
	return n
}

// SubscriberRows totals the rows all subscribers actually consumed.
func (h *Harness) SubscriberRows() int64 {
	h.subMu.Lock()
	defer h.subMu.Unlock()
	var total int64
	for _, ss := range h.subscribers {
		total += ss.rows.Load()
	}
	return total
}

// startDeadSink registers an HTTP push sink on the entry gateway whose
// endpoint severs every connection. Small retry budget and a fast breaker
// keep the failure loop tight enough that breaker opens show up within a
// short CI run.
func (h *Harness) startDeadSink() error {
	srv, err := NewChaosServer(http.NotFoundHandler())
	if err != nil {
		return err
	}
	srv.SetDropped(true)
	h.deadSink = srv
	return h.EntryGateway().PushRouter().AddSink(
		&router.HTTPSink{URL: srv.URL(), Client: &http.Client{Timeout: 500 * time.Millisecond}},
		router.SinkOptions{
			Queue:   64,
			Retries: 1,
			Backoff: 5 * time.Millisecond,
			Breaker: breaker.Options{Threshold: 3, Cooldown: 200 * time.Millisecond},
		})
}

// HarnessOptions are test-facing knobs beyond what scenarios declare.
type HarnessOptions struct {
	// Clock, when non-nil, drives the federation router's lookup-TTL clock;
	// chaos tests pass a (*Clock).Now so TTLs lapse by Advance, not sleep.
	Clock func() time.Time
	// RegistrarListener, when non-nil, is installed on every site's
	// registrar before Start so directory-reachability flips are observable
	// from the first registration on.
	RegistrarListener func(site string, reachable bool, err error)
}

// NewHarness builds and starts the scenario's fleet. Fleet generation
// consumes rng; everything else is deterministic wiring. Callers own the
// harness and must Close it.
func NewHarness(sc *Scenario, rng *rand.Rand) (*Harness, error) {
	return NewHarnessOpts(sc, rng, HarnessOptions{})
}

// NewHarnessOpts is NewHarness with test-facing options.
func NewHarnessOpts(sc *Scenario, rng *rand.Rand, opts HarnessOptions) (*Harness, error) {
	h := &Harness{
		Scenario: sc,
		Fleet:    GenerateFleet(sc.Fleet, rng),
		Sites:    make(map[string]*SiteRuntime),
		opts:     opts,
	}
	ok := false
	defer func() {
		if !ok {
			h.Close()
		}
	}()
	for _, tpl := range sc.Fleet.Sites {
		for _, site := range tpl.Instances() {
			rt, err := h.startSite(site, tpl)
			if err != nil {
				return nil, err
			}
			h.Sites[site] = rt
			h.SiteOrder = append(h.SiteOrder, site)
		}
	}
	h.Entry = h.Sites[sc.EntrySite()]
	if sc.Federation.Enabled {
		if err := h.federate(); err != nil {
			return nil, err
		}
	}
	if h.Entry.Server == nil {
		srv, err := h.startWebServer(h.Entry, nil)
		if err != nil {
			return nil, err
		}
		h.Entry.Server = srv
	}
	if sc.Load.DeadSink {
		if err := h.startDeadSink(); err != nil {
			return nil, fmt.Errorf("sim: dead sink: %w", err)
		}
	}
	ok = true
	return h, nil
}

// startSite builds one site's gateway over the shared fleet, the fleet
// driver wrapped in the site's own fault-injection layer.
func (h *Harness) startSite(site string, tpl SiteTemplate) (*SiteRuntime, error) {
	historyDir := ""
	if tpl.DurableHistory {
		root, err := h.historyRoot()
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", site, err)
		}
		historyDir = filepath.Join(root, site)
	}
	faults := faultdrv.NewFaults()
	gw, err := h.buildGateway(site, tpl, historyDir, faults)
	if err != nil {
		return nil, err
	}
	return &SiteRuntime{Name: site, Template: tpl, Gateway: gw,
		HistoryDir: historyDir, Faults: faults}, nil
}

// buildGateway constructs a site gateway over the shared fleet — both the
// initial build and the replacement instance a restart_gateway event brings
// up on the same history dir.
func (h *Harness) buildGateway(site string, tpl SiteTemplate, historyDir string, faults *faultdrv.Faults) (*core.Gateway, error) {
	cfg := core.Config{
		Name:                  site,
		Cache:                 qcache.Options{TTL: tpl.CacheTTL},
		HarvestTimeout:        tpl.HarvestTimeout,
		QueryTimeout:          tpl.QueryTimeout,
		Breaker:               core.BreakerOptions{Threshold: tpl.BreakerThreshold, Cooldown: tpl.BreakerCooldown},
		MaxConcurrentHarvests: tpl.MaxConcurrentHarvests,
		DisableCoalescing:     tpl.DisableCoalescing,
		DisableHistory:        tpl.DisableHistory,
		StaleGrace:            tpl.StaleGrace,
		Probe:                 health.Options{Interval: tpl.ProbeInterval},
		Push:                  router.Options{QueueSize: tpl.SubscribeQueue, Stall: tpl.SubscribeStall},
	}
	if historyDir != "" {
		cfg.Durable = tsdb.Options{Dir: historyDir, Fsync: tpl.HistoryFsync}
	}
	gw := core.New(cfg)
	fd := NewFleetDriver(h.Fleet)
	if err := gw.RegisterDriver(faultdrv.New(FleetDriverName, fd, faults), fd.Schema()); err != nil {
		gw.Close()
		return nil, fmt.Errorf("sim: %s: %w", site, err)
	}
	for _, src := range h.Fleet.SiteSources(site) {
		err := gw.AddSource(core.SourceConfig{
			URL:         src.URL,
			Drivers:     []string{FleetDriverName},
			Description: "simulated fleet source",
		})
		if err != nil {
			gw.Close()
			return nil, fmt.Errorf("sim: %s: %w", site, err)
		}
	}
	return gw, nil
}

// historyRoot lazily creates the temp root durable-history sites live under;
// Close removes it.
func (h *Harness) historyRoot() (string, error) {
	if h.tmpRoot == "" {
		dir, err := os.MkdirTemp("", "gridrm-sim-")
		if err != nil {
			return "", err
		}
		h.tmpRoot = dir
	}
	return h.tmpRoot, nil
}

// SiteGateway returns a site's current gateway — the replacement instance
// after a restart_gateway event. Nil for unknown sites.
func (h *Harness) SiteGateway(site string) *core.Gateway {
	h.gwMu.RLock()
	defer h.gwMu.RUnlock()
	rt, ok := h.Sites[site]
	if !ok {
		return nil
	}
	return rt.Gateway
}

// EntryGateway returns the entry site's current gateway.
func (h *Harness) EntryGateway() *core.Gateway {
	h.gwMu.RLock()
	defer h.gwMu.RUnlock()
	return h.Entry.Gateway
}

// RestartSite crash-stops a site's gateway (no final sync, no final
// checkpoint — a kill, not a drain) and brings up a replacement on the same
// history directory, behind the same HTTP address. With durable history the
// new instance restores the newest checkpoint plus the WAL tail; without it
// the restart wipes all state, which is exactly the volatility this layer
// exists to remove.
func (h *Harness) RestartSite(site string) error {
	rt, ok := h.Sites[site]
	if !ok {
		return fmt.Errorf("sim: restart_gateway: unknown site %q", site)
	}
	old := rt.Gateway
	if d := old.DurableHistory(); d != nil {
		d.CrashClose()
	}
	old.Close()
	gw, err := h.buildGateway(site, rt.Template, rt.HistoryDir, rt.Faults)
	if err != nil {
		return err
	}
	if h.Router != nil && rt == h.Entry {
		gw.SetGlobalRouter(h.Router)
		h.Router.RegisterMetrics(gw.Metrics())
	}
	h.gwMu.Lock()
	rt.Gateway = gw
	h.gwMu.Unlock()
	if rt.Server != nil {
		ws := web.NewServer(gw, nil, nil)
		if rt == h.Entry && h.Scenario.Load.MaxInFlight > 0 {
			ws.SetAdmissionLimits(h.Scenario.Load.MaxInFlight, h.Scenario.Load.MaxQueue)
		}
		rt.Server.SetHandler(ws)
	}
	return nil
}

// startWebServer puts a site's gateway behind a droppable HTTP server.
func (h *Harness) startWebServer(rt *SiteRuntime, dir http.Handler) (*ChaosServer, error) {
	ws := web.NewServer(rt.Gateway, nil, dir)
	if rt == h.Entry && h.Scenario.Load.MaxInFlight > 0 {
		ws.SetAdmissionLimits(h.Scenario.Load.MaxInFlight, h.Scenario.Load.MaxQueue)
	}
	return NewChaosServer(ws)
}

// federate stands up the directory replicas, registers every site and
// installs the resilient router on the entry gateway.
func (h *Harness) federate() error {
	fed := h.Scenario.Federation
	var services []gma.DirectoryService
	for i := 0; i < fed.Directories; i++ {
		dir := gma.NewDirectory(0, nil) // records never expire; outages are dropped traffic
		srv, err := NewChaosServer(dir.Handler())
		if err != nil {
			return err
		}
		h.Replicas = append(h.Replicas, &DirectoryReplica{Dir: dir, Server: srv})
		services = append(services, &gma.DirectoryClient{BaseURL: srv.URL(), Timeout: 2 * time.Second})
	}
	h.MultiDir = gma.NewMultiDirectory(services...)
	for _, site := range h.SiteOrder {
		rt := h.Sites[site]
		srv, err := h.startWebServer(rt, nil)
		if err != nil {
			return err
		}
		rt.Server = srv
		rt.Registrar = gma.NewRegistrar(h.MultiDir, gma.Registration{
			Name: site, Endpoint: srv.URL(), Groups: fleetGroups(),
		}, registrarInterval)
		if h.opts.RegistrarListener != nil {
			site := site
			rt.Registrar.SetStateListener(func(reachable bool, err error) {
				h.opts.RegistrarListener(site, reachable, err)
			})
		}
		if err := rt.Registrar.Start(); err != nil {
			return fmt.Errorf("sim: register %s: %w", site, err)
		}
	}
	for i := 1; i <= fed.Republishers; i++ {
		if err := h.startRepublisher(fmt.Sprintf("repub-%d", i), fed); err != nil {
			return err
		}
	}
	h.Router = gma.NewResilientRouter(h.MultiDir, web.RemoteQueryContext, h.Entry.Name, gma.Config{
		LookupTTL:     fed.LookupTTL,
		RetryAttempts: fed.RetryAttempts,
		HedgeAfter:    fed.HedgeAfter,
		Clock:         h.opts.Clock,
	})
	h.Entry.Gateway.SetGlobalRouter(h.Router)
	h.Router.RegisterMetrics(h.Entry.Gateway.Metrics())
	return nil
}

// startRepublisher brings up one republisher: scrapes go over HTTP through
// the sites' droppable servers (so partitions bite), live feeds subscribe
// straight into the child gateways in-process.
func (h *Harness) startRepublisher(name string, fed FederationSpec) error {
	srv, err := NewChaosServer(http.NotFoundHandler())
	if err != nil {
		return err
	}
	g, err := repub.New(repub.Options{
		Name:            name,
		Endpoint:        srv.URL(),
		Directory:       h.MultiDir,
		Groups:          fleetGroups(),
		Subscribe:       h.repubSubscribe,
		RefreshInterval: fed.RepubRefresh,
		ScrapeInterval:  fed.RepubScrape,
	})
	if err != nil {
		srv.Close()
		return err
	}
	srv.SetHandler(g.Handler())
	if err := g.Start(context.Background()); err != nil {
		srv.Close()
		return err
	}
	h.Repubs = append(h.Repubs, &RepubRuntime{Name: name, Gateway: g, Server: srv})
	return nil
}

// repubSubscribe is the republishers' live feed: a continuous query opened
// directly on the child site's gateway.
func (h *Harness) repubSubscribe(ctx context.Context, site, sql string) (*router.Subscription, error) {
	gw := h.SiteGateway(site)
	if gw == nil {
		return nil, fmt.Errorf("sim: repub subscribe: unknown site %q", site)
	}
	return gw.Subscribe(ctx, core.QueryOptions{Principal: SimPrincipal, SQL: sql})
}

// Republisher returns republisher i (1-based), nil when out of range.
func (h *Harness) Republisher(i int) *RepubRuntime {
	if i < 1 || i > len(h.Repubs) {
		return nil
	}
	return h.Repubs[i-1]
}

// KillRepublisher crashes republisher i: traffic severed, loops halted,
// registration left stale in the directory.
func (h *Harness) KillRepublisher(i int) bool {
	rr := h.Republisher(i)
	if rr == nil {
		return false
	}
	rr.Server.SetDropped(true)
	rr.Gateway.Halt()
	return true
}

// ReviveRepublisher restores a killed republisher on its old address.
func (h *Harness) ReviveRepublisher(i int) bool {
	rr := h.Republisher(i)
	if rr == nil {
		return false
	}
	rr.Server.SetDropped(false)
	return rr.Gateway.Start(context.Background()) == nil
}

// DrainRepublisher stops republisher i gracefully: workers wound down,
// registration withdrawn, so the survivors rebalance and the entry router
// replans without it.
func (h *Harness) DrainRepublisher(i int) bool {
	rr := h.Republisher(i)
	if rr == nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rr.Gateway.Stop(ctx)
	rr.Server.SetDropped(true)
	return true
}

// RepubStats sums every republisher's counters.
func (h *Harness) RepubStats() repub.Stats {
	var total repub.Stats
	for _, rr := range h.Repubs {
		s := rr.Gateway.Stats()
		total.RegionQueries += s.RegionQueries
		total.SiteQueries += s.SiteQueries
		total.NotOwned += s.NotOwned
		total.Scrapes += s.Scrapes
		total.ScrapeErrors += s.ScrapeErrors
		total.LiveRows += s.LiveRows
		total.Subscriptions += s.Subscriptions
		total.SubscribeFallbacks += s.SubscribeFallbacks
		total.Rebalances += s.Rebalances
		total.RefreshErrors += s.RefreshErrors
		total.StoredRows += s.StoredRows
	}
	return total
}

func fleetGroups() []string {
	var groups []string
	for g := range NewFleetDriver(nil).Schema().Groups {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	return groups
}

// MetricsURL is the entry site's Prometheus-style metrics endpoint.
func (h *Harness) MetricsURL() string { return h.Entry.Server.URL() + "/metrics" }

// KillSource marks a source dead; its connects, pings and queries fail
// until ReviveSource.
func (h *Harness) KillSource(url string) bool { return h.Fleet.SetDown(url, true) }

// ReviveSource brings a killed source back.
func (h *Harness) ReviveSource(url string) bool { return h.Fleet.SetDown(url, false) }

// PartitionSite drops (or heals) a site's HTTP traffic.
func (h *Harness) PartitionSite(site string, partitioned bool) bool {
	rt, ok := h.Sites[site]
	if !ok || rt.Server == nil {
		return false
	}
	rt.Server.SetDropped(partitioned)
	return true
}

// SetDirectoryDown drops (or heals) one directory replica's traffic.
func (h *Harness) SetDirectoryDown(i int, down bool) bool {
	if i < 0 || i >= len(h.Replicas) {
		return false
	}
	h.Replicas[i].Server.SetDropped(down)
	return true
}

// Close tears the harness down: registrars, site servers, gateways, then
// directory replicas. Safe on a partially-built harness.
func (h *Harness) Close() {
	for _, site := range h.SiteOrder {
		rt := h.Sites[site]
		if rt.Registrar != nil {
			rt.Registrar.Stop()
		}
	}
	for _, rr := range h.Repubs {
		rr.Gateway.Halt()
		rr.Server.Close()
	}
	for _, site := range h.SiteOrder {
		rt := h.Sites[site]
		if rt.Server != nil {
			rt.Server.Close()
		}
		rt.Gateway.Close()
	}
	for _, rep := range h.Replicas {
		rep.Server.Close()
	}
	if h.deadSink != nil {
		h.deadSink.Close()
	}
	if h.tmpRoot != "" {
		_ = os.RemoveAll(h.tmpRoot)
	}
}

// ChaosServer is an HTTP server whose traffic can be dropped at runtime:
// while dropped, every connection is severed without a response, which is
// what a network partition or a dead process looks like to clients —
// unlike httptest.Server, it can come back on the same address.
type ChaosServer struct {
	mu      sync.RWMutex // guards inner (swapped by SetHandler on restart)
	inner   http.Handler
	ln      net.Listener
	srv     *http.Server
	dropped atomic.Bool
}

// NewChaosServer starts a droppable server for the handler on an ephemeral
// localhost port.
func NewChaosServer(inner http.Handler) (*ChaosServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c := &ChaosServer{inner: inner, ln: ln}
	c.srv = &http.Server{Handler: c}
	go func() { _ = c.srv.Serve(ln) }()
	return c, nil
}

// URL returns the server's base URL.
func (c *ChaosServer) URL() string { return "http://" + c.ln.Addr().String() }

// SetDropped severs (or restores) the server's traffic.
func (c *ChaosServer) SetDropped(dropped bool) { c.dropped.Store(dropped) }

// SetHandler swaps the inner handler — the address survives a gateway
// restart, just like a process coming back on its configured port.
func (c *ChaosServer) SetHandler(inner http.Handler) {
	c.mu.Lock()
	c.inner = inner
	c.mu.Unlock()
}

// Dropped reports whether traffic is currently severed.
func (c *ChaosServer) Dropped() bool { return c.dropped.Load() }

// ServeHTTP implements http.Handler.
func (c *ChaosServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.dropped.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	c.mu.RLock()
	inner := c.inner
	c.mu.RUnlock()
	inner.ServeHTTP(w, r)
}

// Close stops the server; in-flight connections are severed.
func (c *ChaosServer) Close() { _ = c.srv.Close() }
