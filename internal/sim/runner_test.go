package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// runnerScenario is a small but complete run: one site, a kill/revive pair,
// and enough clients to exercise the cached and real-time paths.
const runnerScenario = `
name: runner-smoke
seed: 5
duration: 400ms
fleet:
  sites:
    - name: solo
      count: 1
      sources: 4
      hosts: 2
      cache_ttl: 50ms
load:
  clients: 3
  transport: inproc
  mix:
    - mode: cached
      weight: 70
    - mode: real-time
      weight: 30
events:
  - at: 100ms
    action: kill_source
    count: 1
  - at: 300ms
    action: revive_source
    count: 1
assertions:
  max_error_rate: 0
  min_requests: 10
`

func TestRunProducesReport(t *testing.T) {
	sc, err := ParseScenario([]byte(runnerScenario))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "runner-smoke" || r.Seed != 5 {
		t.Errorf("header = %q seed %d", r.Scenario, r.Seed)
	}
	if r.Fleet.Sources != 4 || r.Fleet.Sites != 1 {
		t.Errorf("fleet summary = %+v", r.Fleet)
	}
	if r.Load.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if r.Load.ErrorRate != 0 {
		t.Errorf("error rate = %v (errors %d)", r.Load.ErrorRate, r.Load.Errors)
	}
	if len(r.Events) != 2 || r.Events[0].Action != ActionKillSource || r.Events[1].Action != ActionReviveSource {
		t.Errorf("events = %+v", r.Events)
	}
	if len(r.Events[0].Targets) != 1 {
		t.Errorf("kill targets = %v", r.Events[0].Targets)
	}
	all, ok := r.Latency["all"]
	if !ok || all.Count != r.Load.Requests || all.P99Ms < all.P50Ms {
		t.Errorf("latency[all] = %+v for %d requests", all, r.Load.Requests)
	}
	if _, ok := r.Latency["cached"]; !ok {
		t.Errorf("missing cached latency label: %v", reflect.ValueOf(r.Latency).MapKeys())
	}
	if r.Counters["queries"] == 0 {
		t.Errorf("counters not scraped: %v", r.Counters)
	}
	if len(r.Assertions) != 2 {
		t.Errorf("assertions = %+v", r.Assertions)
	}
	if !r.Passed {
		t.Errorf("run failed assertions: %+v", r.Assertions)
	}
}

// TestRunDeterministicPlan re-runs the same scenario and checks the
// reproducibility contract the report exposes: identical event sequences
// (same targets, same times) and identical assertion verdicts.
func TestRunDeterministicPlan(t *testing.T) {
	run := func() *Report {
		sc, err := ParseScenario([]byte(runnerScenario))
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(sc, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Errorf("event plans differ:\n%+v\n%+v", a.Events, b.Events)
	}
	if a.Passed != b.Passed || len(a.Assertions) != len(b.Assertions) {
		t.Errorf("assertion outcomes differ: %v vs %v", a.Passed, b.Passed)
	}
	for i := range a.Assertions {
		if a.Assertions[i].Name != b.Assertions[i].Name || a.Assertions[i].OK != b.Assertions[i].OK {
			t.Errorf("assertion %d differs: %+v vs %+v", i, a.Assertions[i], b.Assertions[i])
		}
	}
}

func TestPlanEventsDeterministic(t *testing.T) {
	sc, err := ParseScenario([]byte(runnerScenario))
	if err != nil {
		t.Fatal(err)
	}
	plan := func(seed int64) []PlannedEvent {
		rng := rand.New(rand.NewSource(seed))
		fleet := GenerateFleet(sc.Fleet, rng)
		p, err := PlanEvents(sc, fleet, rng)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := plan(5), plan(5)
	if len(a) != 2 {
		t.Fatalf("plan = %+v", a)
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Action != b[i].Action || !reflect.DeepEqual(a[i].Targets, b[i].Targets) {
			t.Errorf("planned event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// The revive must target the source the kill took down.
	if !reflect.DeepEqual(a[0].Targets, a[1].Targets) {
		t.Errorf("revive targets %v, kill targets %v", a[1].Targets, a[0].Targets)
	}
	c := plan(99)
	if reflect.DeepEqual(a[0].Targets, c[0].Targets) {
		t.Log("seeds 5 and 99 picked the same kill target (possible but unlikely)")
	}
}

func TestRunDurationOverrideScalesEvents(t *testing.T) {
	sc, err := ParseScenario([]byte(runnerScenario))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(sc, RunOptions{Duration: 200 * time.Millisecond}) // half the declared 400ms
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) != 2 {
		t.Fatalf("events = %+v", r.Events)
	}
	if r.Events[0].AtMs != 50 || r.Events[1].AtMs != 150 {
		t.Errorf("scaled event times = %v, %v; want 50, 150", r.Events[0].AtMs, r.Events[1].AtMs)
	}
}
