package sim

import "sort"

// evalAssertions checks the scenario's assertions against the finished
// report, in stable (sorted-name) order. Semantics per key:
//
//	max_error_rate        client errors / requests              <= limit
//	max_p99_ms            "all" label p99 latency (ms)          <= limit
//	max_p95_ms            "all" label p95 latency (ms)          <= limit
//	max_shed_rate         shed / requests                       <= limit
//	min_throughput_rps    requests / wall-clock seconds         >= limit
//	min_requests          total client requests                 >= limit
//	min_degraded_share    (stale_serves+history_fallbacks)/requests >= limit
//	min_stale_serves      stale_serves counter                  >= limit
//	min_history_fallbacks history_fallbacks counter             >= limit
//	min_coalesced         coalesced counter                     >= limit
//	min_breaker_opens     breaker_opens counter (local layer)   >= limit
//	min_hedges            hedges counter (federation layer)     >= limit
//	min_plan_cache_hits   plan_cache_hits counter (all sites)   >= limit
//	min_replayed_records  records restored from checkpoint+WAL  >= limit
//	min_wal_appends       records journaled to the WAL          >= limit
//	min_rows_published    rows pushed to continuous queries     >= limit
//	min_rows_dropped      rows dropped on stuck subscribers     >= limit
//	max_row_drop_rate     rows_dropped / rows_published         <= limit
//	min_sub_evictions     stalled subscribers evicted           >= limit
//	min_sink_breaker_opens push-sink breaker opens              >= limit
//	min_repub_region_queries region queries answered by republishers >= limit
//	min_repub_routes      site queries routed republisher-first >= limit
//	min_repub_fallthroughs repub-routed queries that fell through to the site >= limit
//	min_repub_live_rows   rows fed to republisher views by subscription >= limit
//	min_repub_rebalances  refresh cycles that changed a republisher's shard >= limit
//	max_remote_per_fanout fanout_legs / fanouts (entry fan-out degree) <= limit
func evalAssertions(sc *Scenario, r *Report) []AssertionResult {
	requests := float64(r.Load.Requests)
	if requests == 0 {
		requests = 1 // rates over an empty run compare against 0/1
	}
	actual := func(name string) float64 {
		switch name {
		case "max_error_rate":
			return r.Load.ErrorRate
		case "max_p99_ms":
			return r.Latency["all"].P99Ms
		case "max_p95_ms":
			return r.Latency["all"].P95Ms
		case "max_shed_rate":
			return float64(r.Counters["shed"]) / requests
		case "min_throughput_rps":
			return r.Load.ThroughputRPS
		case "min_requests":
			return float64(r.Load.Requests)
		case "min_degraded_share":
			return float64(r.Counters["stale_serves"]+r.Counters["history_fallbacks"]) / requests
		case "min_stale_serves":
			return float64(r.Counters["stale_serves"])
		case "min_history_fallbacks":
			return float64(r.Counters["history_fallbacks"])
		case "min_coalesced":
			return float64(r.Counters["coalesced"])
		case "min_breaker_opens":
			return float64(r.Counters["breaker_opens"])
		case "min_hedges":
			return float64(r.Counters["hedges"])
		case "min_plan_cache_hits":
			return float64(r.Counters["plan_cache_hits"])
		case "min_replayed_records":
			return float64(r.Counters["replayed_records"])
		case "min_wal_appends":
			return float64(r.Counters["wal_appends"])
		case "min_rows_published":
			return float64(r.Counters["rows_published"])
		case "min_rows_dropped":
			return float64(r.Counters["rows_dropped"])
		case "max_row_drop_rate":
			published := float64(r.Counters["rows_published"])
			if published == 0 {
				published = 1
			}
			return float64(r.Counters["rows_dropped"]) / published
		case "min_sub_evictions":
			return float64(r.Counters["subscriber_evictions"])
		case "min_sink_breaker_opens":
			return float64(r.Counters["sink_breaker_opens"])
		case "min_repub_region_queries":
			return float64(r.Counters["repub_region_queries"])
		case "min_repub_routes":
			return float64(r.Counters["repub_routes"])
		case "min_repub_fallthroughs":
			return float64(r.Counters["repub_fallthroughs"])
		case "min_repub_live_rows":
			return float64(r.Counters["repub_live_rows"])
		case "min_repub_rebalances":
			return float64(r.Counters["repub_rebalances"])
		case "max_remote_per_fanout":
			fanouts := float64(r.Counters["fanouts"])
			if fanouts == 0 {
				fanouts = 1
			}
			return float64(r.Counters["fanout_legs"]) / fanouts
		}
		return 0
	}
	names := make([]string, 0, len(sc.Assertions))
	for name := range sc.Assertions {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []AssertionResult
	for _, name := range names {
		limit := sc.Assertions[name]
		got := actual(name)
		ok := got >= limit
		if len(name) >= 4 && name[:4] == "max_" {
			ok = got <= limit
		}
		out = append(out, AssertionResult{Name: name, Limit: limit, Actual: got, OK: ok})
	}
	return out
}
