package sim

import (
	"sync"
	"time"
)

// Epoch is the fixed instant new Clocks start at. Anchoring to a constant
// rather than time.Now keeps clock-driven tests and runs bit-identical
// across machines.
var Epoch = time.Unix(1_700_000_000, 0).UTC()

// Clock is a deterministic, manually-advanced time source. Inject its Now
// method wherever a subsystem accepts a clock (qcache, history, the GMA
// router's lookup TTL, ...) to replace sleep-based TTL tests with explicit
// Advance calls.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock starting at Epoch.
func NewClock() *Clock { return &Clock{now: Epoch} }

// NewClockAt returns a clock starting at the given instant.
func NewClockAt(start time.Time) *Clock { return &Clock{now: start} }

// Now returns the current simulated time. The method value (c.Now) matches
// the `func() time.Time` clock hooks used across the repo.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time. Negative
// deltas are ignored: simulated time never runs backwards.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}
