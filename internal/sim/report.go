package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Report is the simulator's JSON output — the repo's BENCH_*.json format.
// See docs/sim-report.md for the field-by-field schema.
type Report struct {
	Scenario    string                    `json:"scenario"`
	Description string                    `json:"description,omitempty"`
	Seed        int64                     `json:"seed"`
	DurationMS  float64                   `json:"duration_ms"`
	Fleet       FleetSummary              `json:"fleet"`
	Load        LoadSummary               `json:"load"`
	Latency     map[string]LatencySummary `json:"latency"`
	Counters    map[string]int64          `json:"counters"`
	Metrics     map[string]float64        `json:"metrics,omitempty"`
	Events      []EventRecord             `json:"events"`
	Assertions  []AssertionResult         `json:"assertions"`
	Passed      bool                      `json:"passed"`
}

// FleetSummary sizes the generated fleet.
type FleetSummary struct {
	Sites   int `json:"sites"`
	Sources int `json:"sources"`
	Hosts   int `json:"hosts"`
}

// LoadSummary is the client-side view of the run.
type LoadSummary struct {
	Clients       int     `json:"clients"`
	Transport     string  `json:"transport"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ErrorRate     float64 `json:"error_rate"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// LatencySummary is one label's latency distribution. The "all" label
// merges every query; the rest are per mix label (mode, or scope-mode).
type LatencySummary struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// EventRecord is one fired (planned) event.
type EventRecord struct {
	AtMs    float64  `json:"at_ms"`
	Action  string   `json:"action"`
	Targets []string `json:"targets"`
	Detail  string   `json:"detail,omitempty"`
}

// AssertionResult is one checked assertion.
type AssertionResult struct {
	Name   string  `json:"name"`
	Limit  float64 `json:"limit"`
	Actual float64 `json:"actual"`
	OK     bool    `json:"ok"`
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders a terse human-readable pass/fail line per assertion plus
// the headline numbers.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s seed %d: %d requests, %d errors (%.2f%%), %.1f req/s",
		r.Scenario, r.Seed, r.Load.Requests, r.Load.Errors, 100*r.Load.ErrorRate, r.Load.ThroughputRPS)
	if all, ok := r.Latency["all"]; ok {
		fmt.Fprintf(&b, ", p50 %.2fms p95 %.2fms p99 %.2fms", all.P50Ms, all.P95Ms, all.P99Ms)
	}
	b.WriteString("\n")
	for _, a := range r.Assertions {
		status := "PASS"
		if !a.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %s %s: limit %v actual %v\n", status, a.Name, a.Limit, round3(a.Actual))
	}
	return b.String()
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }

// latencyHistogram accumulates per-label samples (one slice per client,
// merged at the end — no locking on the hot path).
type latencyHistogram struct {
	samples map[string][]float64 // label -> latency ms
}

func newLatencyHistogram() *latencyHistogram {
	return &latencyHistogram{samples: make(map[string][]float64)}
}

func (h *latencyHistogram) record(label string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.samples[label] = append(h.samples[label], ms)
	h.samples["all"] = append(h.samples["all"], ms)
}

func (h *latencyHistogram) merge(other *latencyHistogram) {
	for label, xs := range other.samples {
		h.samples[label] = append(h.samples[label], xs...)
	}
}

func (h *latencyHistogram) summaries() map[string]LatencySummary {
	out := make(map[string]LatencySummary, len(h.samples))
	for label, xs := range h.samples {
		if len(xs) == 0 {
			continue
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		out[label] = LatencySummary{
			Count: int64(len(sorted)),
			P50Ms: percentile(sorted, 0.50),
			P95Ms: percentile(sorted, 0.95),
			P99Ms: percentile(sorted, 0.99),
			MaxMs: sorted[len(sorted)-1],
		}
	}
	return out
}

// percentile returns the q-quantile of ascending xs (nearest-rank method).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	idx := int(float64(len(xs))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}

// scrapeCounters sums the degradation/resilience counters across every
// gateway, folds in the router's federation counters, and scrapes the entry
// site's /metrics endpoint for the HTTP-layer numbers (load shedding).
func (h *Harness) scrapeCounters() (map[string]int64, map[string]float64) {
	counters := map[string]int64{}
	for _, site := range h.SiteOrder {
		gw := h.SiteGateway(site)
		st := gw.Stats()
		counters["queries"] += st.Queries
		counters["query_errors"] += st.QueryErrors
		counters["harvests"] += st.Harvests
		counters["harvest_errors"] += st.HarvestErrors
		counters["cache_served"] += st.CacheServed
		counters["coalesced"] += st.Coalesced
		counters["routed"] += st.Routed
		counters["timeouts"] += st.Timeouts
		counters["retries"] += st.Retries
		counters["breaker_skipped"] += st.BreakerSkipped
		counters["breaker_opens"] += st.BreakerOpens
		counters["stale_serves"] += st.StaleServes
		counters["history_fallbacks"] += st.HistoryFallbacks
		counters["driver_panics"] += st.DriverPanics
		counters["plan_cache_hits"] += st.PlanCacheHits
		counters["plan_cache_misses"] += st.PlanCacheMisses
		counters["rows_published"] += st.RowsPublished
		counters["rows_dropped"] += st.RowsDropped
		counters["subscriber_evictions"] += st.SubscriberEvictions
		counters["sink_delivered"] += st.SinkDelivered
		counters["sink_dropped"] += st.SinkDropped
		counters["sink_breaker_opens"] += st.SinkBreakerOpens
		counters["events_dropped"] += st.EventsDropped
		counters["fanouts"] += st.Fanouts
		counters["fanout_legs"] += st.FanoutLegs
		if d := gw.DurableHistory(); d != nil {
			// Counters of the current instance only: a restart_gateway
			// event discards the pre-crash instance's totals, so
			// replayed_records reflects what the replacement restored.
			ds := d.Stats()
			counters["wal_appends"] += ds.WALAppends
			counters["wal_fsyncs"] += ds.Fsyncs
			counters["replayed_records"] += ds.ReplayedRecords
			counters["corrupt_records"] += ds.CorruptRecords
			counters["checkpoints"] += ds.Checkpoints
			counters["history_disk_bytes"] += ds.DiskBytes
		}
	}
	if h.Router != nil {
		rs := h.Router.Stats()
		counters["remote_queries"] = rs.RemoteQueries
		counters["remote_failures"] = rs.RemoteFailures
		counters["remote_retries"] = rs.RemoteRetries
		counters["remote_breaker_opens"] = rs.RemoteBreakerOpens
		counters["remote_breaker_skipped"] = rs.RemoteBreakerSkipped
		counters["hedges"] = rs.Hedges
		counters["hedge_wins"] = rs.HedgeWins
		counters["lookup_cache_hits"] = rs.LookupCacheHits
		counters["stale_lookups"] = rs.StaleLookups
		counters["repub_routes"] = rs.RepubRoutes
		counters["repub_fallthroughs"] = rs.RepubFallthroughs
		counters["generation_evictions"] = rs.GenerationEvictions
	}
	if len(h.Repubs) > 0 {
		ps := h.RepubStats()
		counters["repub_region_queries"] = ps.RegionQueries
		counters["repub_site_queries"] = ps.SiteQueries
		counters["repub_not_owned"] = ps.NotOwned
		counters["repub_scrapes"] = ps.Scrapes
		counters["repub_scrape_errors"] = ps.ScrapeErrors
		counters["repub_live_rows"] = ps.LiveRows
		counters["repub_subscriptions"] = ps.Subscriptions
		counters["repub_rebalances"] = ps.Rebalances
	}
	metrics := scrapeMetrics(h.MetricsURL())
	if shed, ok := metrics["gridrm_http_shed_total"]; ok {
		counters["shed"] = int64(shed)
	}
	return counters, metrics
}

// scrapeMetrics fetches and parses a Prometheus-style text exposition into
// name -> value. Errors yield an empty map: the report's primary counters
// come from Stats(), the scrape is corroboration.
func scrapeMetrics(url string) map[string]float64 {
	out := map[string]float64{}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out
}
