package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"gridrm/internal/driver"
)

// FleetSource is one simulated data source: a named agent serving Processor
// and Memory rows for a few hosts. Sources can be killed and revived at
// runtime (the kill_source / revive_source scenario actions).
type FleetSource struct {
	Site     string
	Name     string   // URL host, unique fleet-wide (e.g. "edge-1-src003")
	URL      string   // gridrm:fleet://<Name>
	Hosts    []string // host names this source reports on
	BaseLoad float64  // deterministic per-source 1-minute load baseline
	RAMMB    int64    // deterministic per-source RAM size

	down    atomic.Bool
	queries atomic.Int64
}

// Down reports whether the source is currently killed.
func (s *FleetSource) Down() bool { return s.down.Load() }

// Queries returns how many queries the source has served.
func (s *FleetSource) Queries() int64 { return s.queries.Load() }

// Fleet is the generated set of simulated sources, indexed by URL and
// grouped by site. Generation order — template order, instance order,
// source index — is the identity event targets resolve against, so a fleet
// is fully determined by (FleetSpec, rng state).
type Fleet struct {
	sources map[string]*FleetSource // by URL
	bySite  map[string][]*FleetSource
	sites   []string // creation order
}

// GenerateFleet expands the templates into concrete sources, drawing every
// per-source attribute from rng in a fixed order.
func GenerateFleet(spec FleetSpec, rng *rand.Rand) *Fleet {
	f := &Fleet{
		sources: make(map[string]*FleetSource),
		bySite:  make(map[string][]*FleetSource),
	}
	for _, tpl := range spec.Sites {
		for _, site := range tpl.Instances() {
			f.sites = append(f.sites, site)
			for i := 1; i <= tpl.Sources; i++ {
				name := fmt.Sprintf("%s-src%03d", site, i)
				src := &FleetSource{
					Site:     site,
					Name:     name,
					URL:      driver.FormatURL(FleetProtocol, name, 0, ""),
					BaseLoad: math.Round((0.5+3.5*rng.Float64())*100) / 100,
					RAMMB:    1024 << uint(rng.Intn(3)),
				}
				for h := 1; h <= tpl.Hosts; h++ {
					src.Hosts = append(src.Hosts, fmt.Sprintf("%s-h%d", name, h))
				}
				f.sources[src.URL] = src
				f.bySite[site] = append(f.bySite[site], src)
			}
		}
	}
	return f
}

// Source looks a source up by URL.
func (f *Fleet) Source(url string) (*FleetSource, bool) {
	s, ok := f.sources[url]
	return s, ok
}

// Sites returns the site names in creation order.
func (f *Fleet) Sites() []string { return f.sites }

// SiteSources returns a site's sources in creation order.
func (f *Fleet) SiteSources(site string) []*FleetSource { return f.bySite[site] }

// TotalSources counts sources fleet-wide.
func (f *Fleet) TotalSources() int { return len(f.sources) }

// TotalHosts counts hosts fleet-wide.
func (f *Fleet) TotalHosts() int {
	n := 0
	for _, s := range f.sources {
		n += len(s.Hosts)
	}
	return n
}

// SetDown kills or revives a source by URL.
func (f *Fleet) SetDown(url string, down bool) bool {
	s, ok := f.sources[url]
	if !ok {
		return false
	}
	s.down.Store(down)
	return true
}

// DownCount counts currently-killed sources.
func (f *Fleet) DownCount() int {
	n := 0
	for _, s := range f.sources {
		if s.Down() {
			n++
		}
	}
	return n
}
