package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// PlannedEvent is one fault event with its targets fully resolved. Target
// resolution happens at plan time, before the load starts, drawing from
// the run's seeded rng — so the event sequence in the report is a pure
// function of (scenario, seed), independent of runtime scheduling.
type PlannedEvent struct {
	At      time.Duration
	Action  string
	Targets []string // source URLs, site names, or directory indices
	Detail  string   // human-readable knob values ("latency=50ms", ...)

	spec EventSpec
}

// PlanEvents resolves every scenario event against the generated fleet.
// Events fire in At order; ties keep scenario order.
func PlanEvents(sc *Scenario, fleet *Fleet, rng *rand.Rand) ([]PlannedEvent, error) {
	// plannedDown tracks which sources earlier events leave dead, so
	// kill_source picks live sources and revive_source picks dead ones.
	plannedDown := map[string]bool{}
	specs := make([]EventSpec, len(sc.Events))
	copy(specs, sc.Events)
	sort.SliceStable(specs, func(i, j int) bool { return specs[i].At < specs[j].At })

	var plan []PlannedEvent
	for _, ev := range specs {
		pe := PlannedEvent{At: ev.At, Action: ev.Action, spec: ev}
		switch ev.Action {
		case ActionKillSource, ActionReviveSource:
			wantDown := ev.Action == ActionReviveSource
			pool := eventSourcePool(sc, fleet, ev.Site)
			var candidates []string
			for _, url := range pool {
				if plannedDown[url] == wantDown {
					candidates = append(candidates, url)
				}
			}
			if len(candidates) < ev.Count {
				return nil, fmt.Errorf("sim: event %s at %s: wants %d sources, only %d eligible",
					ev.Action, ev.At, ev.Count, len(candidates))
			}
			rng.Shuffle(len(candidates), func(i, j int) {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			})
			pe.Targets = append([]string(nil), candidates[:ev.Count]...)
			sort.Strings(pe.Targets)
			for _, url := range pe.Targets {
				plannedDown[url] = !wantDown
			}
		case ActionPartitionSite, ActionHealSite, ActionLatencySpike,
			ActionLatencyClear, ActionDriverErrors, ActionDriverErrorsClear,
			ActionRestartGateway:
			site, err := resolveSite(sc, ev.Site, rng)
			if err != nil {
				return nil, err
			}
			pe.Targets = []string{site}
			switch ev.Action {
			case ActionLatencySpike:
				pe.Detail = "latency=" + ev.Latency.String()
			case ActionDriverErrors:
				pe.Detail = fmt.Sprintf("error_every=%d", ev.ErrorEvery)
			}
		case ActionDirectoryDown, ActionDirectoryUp:
			pe.Targets = []string{fmt.Sprintf("directory-%d", ev.Directory)}
		case ActionKillRepublisher, ActionReviveRepublisher, ActionDrainRepublisher:
			pe.Targets = []string{fmt.Sprintf("repub-%d", ev.Republisher)}
		case ActionStallSubscriber, ActionKillSubscriber:
			// Concrete subscribers are picked at fire time (the harness owns
			// their registry); the plan just records the blast radius.
			pe.Targets = []string{fmt.Sprintf("subscribers x%d", ev.Count)}
		}
		plan = append(plan, pe)
	}
	return plan, nil
}

// eventSourcePool lists the source URLs an event may target: the named
// instance's, every instance of the named template's, or the whole fleet's.
func eventSourcePool(sc *Scenario, fleet *Fleet, site string) []string {
	var sites []string
	switch {
	case site == "":
		sites = fleet.Sites()
	case containsString(fleet.Sites(), site):
		sites = []string{site}
	default: // template name
		for _, tpl := range sc.Fleet.Sites {
			if tpl.Name == site {
				sites = tpl.Instances()
			}
		}
	}
	var urls []string
	for _, s := range sites {
		for _, src := range fleet.SiteSources(s) {
			urls = append(urls, src.URL)
		}
	}
	return urls
}

// resolveSite picks the concrete site instance an event targets.
func resolveSite(sc *Scenario, site string, rng *rand.Rand) (string, error) {
	all := sc.SiteNames()
	if site == "" {
		return all[rng.Intn(len(all))], nil
	}
	if containsString(all, site) {
		return site, nil
	}
	for _, tpl := range sc.Fleet.Sites {
		if tpl.Name == site {
			inst := tpl.Instances()
			return inst[rng.Intn(len(inst))], nil
		}
	}
	return "", fmt.Errorf("sim: no site matches %q", site)
}

// Fire applies the event to the harness.
func (pe PlannedEvent) Fire(h *Harness) error {
	switch pe.Action {
	case ActionKillSource:
		for _, url := range pe.Targets {
			if !h.KillSource(url) {
				return fmt.Errorf("sim: kill_source: unknown source %s", url)
			}
		}
	case ActionReviveSource:
		for _, url := range pe.Targets {
			if !h.ReviveSource(url) {
				return fmt.Errorf("sim: revive_source: unknown source %s", url)
			}
		}
	case ActionPartitionSite, ActionHealSite:
		if !h.PartitionSite(pe.Targets[0], pe.Action == ActionPartitionSite) {
			return fmt.Errorf("sim: %s: site %s has no server", pe.Action, pe.Targets[0])
		}
	case ActionDirectoryDown, ActionDirectoryUp:
		if !h.SetDirectoryDown(pe.spec.Directory, pe.Action == ActionDirectoryDown) {
			return fmt.Errorf("sim: %s: no replica %d", pe.Action, pe.spec.Directory)
		}
	case ActionKillRepublisher:
		if !h.KillRepublisher(pe.spec.Republisher) {
			return fmt.Errorf("sim: kill_republisher: no republisher %d", pe.spec.Republisher)
		}
	case ActionReviveRepublisher:
		if !h.ReviveRepublisher(pe.spec.Republisher) {
			return fmt.Errorf("sim: revive_republisher: no republisher %d", pe.spec.Republisher)
		}
	case ActionDrainRepublisher:
		if !h.DrainRepublisher(pe.spec.Republisher) {
			return fmt.Errorf("sim: drain_republisher: no republisher %d", pe.spec.Republisher)
		}
	case ActionLatencySpike:
		h.Sites[pe.Targets[0]].Faults.SetQueryLatency(pe.spec.Latency)
	case ActionLatencyClear:
		h.Sites[pe.Targets[0]].Faults.SetQueryLatency(0)
	case ActionDriverErrors:
		h.Sites[pe.Targets[0]].Faults.SetErrorEvery(pe.spec.ErrorEvery)
	case ActionDriverErrorsClear:
		h.Sites[pe.Targets[0]].Faults.SetErrorEvery(0)
	case ActionRestartGateway:
		if err := h.RestartSite(pe.Targets[0]); err != nil {
			return err
		}
	case ActionStallSubscriber:
		if n := h.StallSubscribers(pe.spec.Count); n == 0 {
			return fmt.Errorf("sim: stall_subscriber: no live subscribers")
		}
	case ActionKillSubscriber:
		if n := h.KillSubscribers(pe.spec.Count); n == 0 {
			return fmt.Errorf("sim: kill_subscriber: no live subscribers")
		}
	default:
		return fmt.Errorf("sim: unknown action %q", pe.Action)
	}
	return nil
}

// String renders the event for logs.
func (pe PlannedEvent) String() string {
	s := fmt.Sprintf("%s %s %s", pe.At, pe.Action, strings.Join(pe.Targets, ","))
	if pe.Detail != "" {
		s += " (" + pe.Detail + ")"
	}
	return s
}
