// Package sim is the scenario-driven fleet simulator and chaos harness:
// YAML scenarios declare a fleet of simulated sites and sources, a client
// load profile, timed fault events and end-of-run assertions; the runner
// spins the fleet up in-process against the real internal/core,
// internal/web and internal/gma code, injects the faults through the
// existing faultdrv and chaos knobs, and emits a machine-readable JSON
// performance report (the repo's BENCH_*.json trajectory).
//
// All randomness — fleet generation, fault-target selection, per-client
// query sequences — derives from one seeded math/rand source, so any run is
// reproducible from (scenario, seed): two runs with the same inputs produce
// the same fleet, the same resolved event sequence and the same client
// query plans.
package sim

import (
	"fmt"
	"strings"
)

// The repo deliberately has no external dependencies, so scenarios are
// written in a small YAML subset parsed here: nested maps by two-space
// indentation, "- " lists (scalar items or maps), "key: value" scalars,
// full-line and trailing "# comments", and single- or double-quoted
// strings. Anchors, flow syntax, multi-line scalars and tabs are not
// supported; `gridrm-sim validate` reports violations with line numbers.

// yline is one significant scenario line.
type yline struct {
	indent int
	text   string
	n      int // 1-based line number, for error messages
}

// parseYAML parses the subset into map[string]any / []any / string values.
func parseYAML(data []byte) (any, error) {
	var lines []yline
	for i, raw := range strings.Split(string(data), "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.ContainsRune(text[:len(text)-len(trimmed)], '\t') {
			return nil, fmt.Errorf("line %d: tabs are not allowed for indentation", i+1)
		}
		lines = append(lines, yline{
			indent: len(text) - len(trimmed),
			text:   strings.TrimSpace(trimmed),
			n:      i + 1,
		})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	node, next, err := parseBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("line %d: unexpected indentation", lines[next].n)
	}
	return node, nil
}

// stripComment removes a full-line or trailing comment, respecting quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if inSingle || inDouble {
				continue
			}
			// A comment starts the line or follows whitespace.
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the map or list starting at lines[i], whose items sit
// at exactly the given indent, returning the node and the index of the
// first unconsumed line.
func parseBlock(lines []yline, i, indent int) (any, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseList(lines, i, indent)
	}
	return parseMap(lines, i, indent)
}

func parseMap(lines []yline, i, indent int) (any, int, error) {
	m := make(map[string]any)
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, 0, fmt.Errorf("line %d: list item where a key was expected", ln.n)
		}
		key, val, isKey := splitKey(ln.text)
		if !isKey {
			return nil, 0, fmt.Errorf("line %d: expected \"key: value\", got %q", ln.n, ln.text)
		}
		if _, dup := m[key]; dup {
			return nil, 0, fmt.Errorf("line %d: duplicate key %q", ln.n, key)
		}
		i++
		if val != "" {
			m[key] = unquote(val)
			continue
		}
		// Empty value: a nested block when the next line is deeper,
		// otherwise an empty string scalar.
		if i < len(lines) && lines[i].indent > indent {
			child, next, err := parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, 0, err
			}
			m[key], i = child, next
		} else {
			m[key] = ""
		}
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, 0, fmt.Errorf("line %d: unexpected indentation", lines[i].n)
	}
	return m, i, nil
}

func parseList(lines []yline, i, indent int) (any, int, error) {
	var list []any
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			break // back to the enclosing map
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// "-" alone: the item is the deeper-indented block below.
			i++
			if i >= len(lines) || lines[i].indent <= indent {
				return nil, 0, fmt.Errorf("line %d: empty list item", ln.n)
			}
			child, next, err := parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, 0, err
			}
			list, i = append(list, child), next
			continue
		}
		if _, _, isKey := splitKey(rest); !isKey {
			list = append(list, unquote(rest))
			i++
			continue
		}
		// A map item: re-parse "- key: value" as a map whose first line is
		// the remainder at indent+2, followed by the deeper real lines.
		j := i + 1
		for j < len(lines) && lines[j].indent > indent {
			j++
		}
		sub := append([]yline{{indent: indent + 2, text: rest, n: ln.n}}, lines[i+1:j]...)
		for k := 1; k < len(sub); k++ {
			if sub[k].indent < indent+2 {
				return nil, 0, fmt.Errorf("line %d: bad indentation inside list item", sub[k].n)
			}
		}
		child, consumed, err := parseMap(sub, 0, indent+2)
		if err != nil {
			return nil, 0, err
		}
		if consumed != len(sub) {
			return nil, 0, fmt.Errorf("line %d: unexpected indentation", sub[consumed].n)
		}
		list, i = append(list, child), j
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, 0, fmt.Errorf("line %d: unexpected indentation", lines[i].n)
	}
	return list, i, nil
}

// splitKey splits "key: value" / "key:"; quoted scalars are never keys.
func splitKey(s string) (key, val string, ok bool) {
	if s == "" || s[0] == '"' || s[0] == '\'' {
		return "", "", false
	}
	if i := strings.Index(s, ": "); i > 0 {
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+2:]), true
	}
	if strings.HasSuffix(s, ":") {
		return strings.TrimSpace(s[:len(s)-1]), "", true
	}
	return "", "", false
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
