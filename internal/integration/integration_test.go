// Package integration_test exercises the full GridRM stack end to end: one
// simulated Grid site observed through all five native agents, a gateway
// running every bundled driver, the servlet interface, and the GMA global
// layer. These are the executable counterparts of the paper's deployment
// experience (§3.2.3) and of experiment E10 ("homogeneous view") in
// DESIGN.md.
package integration_test

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridrm/internal/agents/ganglia"
	"gridrm/internal/agents/netlogger"
	"gridrm/internal/agents/nws"
	"gridrm/internal/agents/scms"
	"gridrm/internal/agents/sim"
	"gridrm/internal/agents/snmp"
	"gridrm/internal/core"
	"gridrm/internal/driver"
	"gridrm/internal/drivers/gangliadrv"
	"gridrm/internal/drivers/netloggerdrv"
	"gridrm/internal/drivers/nwsdrv"
	"gridrm/internal/drivers/scmsdrv"
	"gridrm/internal/drivers/snmpdrv"
	"gridrm/internal/event"
	"gridrm/internal/glue"
	"gridrm/internal/gma"
	"gridrm/internal/security"
	"gridrm/internal/web"
)

// site bundles one simulated site with all five agents and a gateway whose
// drivers cover them.
type site struct {
	sim       *sim.Site
	gw        *core.Gateway
	snmpURLs  []string
	ganglia   string
	nws       string
	netlogger string
	scms      string
	nwsAgent  *nws.Agent
	nlAgent   *netlogger.Agent
	admin     security.Principal
}

func newSite(t *testing.T, name string, hosts int, seed int64) *site {
	t.Helper()
	s := &site{
		sim:   sim.New(sim.Config{Name: name, Hosts: hosts, Seed: seed}),
		admin: security.Principal{Name: "admin", Roles: []string{"operator"}},
	}
	s.sim.StepN(5)
	s.gw = core.New(core.Config{Name: name})
	t.Cleanup(s.gw.Close)
	sm := s.gw.SchemaManager()

	if err := s.gw.RegisterDriver(snmpdrv.New(sm), snmpdrv.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := s.gw.RegisterDriver(gangliadrv.New(sm), gangliadrv.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := s.gw.RegisterDriver(nwsdrv.New(sm), nwsdrv.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := s.gw.RegisterDriver(netloggerdrv.New(sm), netloggerdrv.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := s.gw.RegisterDriver(scmsdrv.New(sm), scmsdrv.Schema()); err != nil {
		t.Fatal(err)
	}

	// One SNMP agent per host; the other agents are site-wide.
	for _, host := range s.sim.HostNames() {
		a, err := snmp.NewAgent(s.sim, snmp.AgentConfig{Host: host})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close() })
		url := "gridrm:snmp://" + a.Addr()
		s.snmpURLs = append(s.snmpURLs, url)
		if err := s.gw.AddSource(core.SourceConfig{URL: url, Description: "snmp " + host}); err != nil {
			t.Fatal(err)
		}
	}
	ga, err := ganglia.NewAgent(s.sim, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ga.Close() })
	s.ganglia = "gridrm:ganglia://" + ga.Addr()
	if err := s.gw.AddSource(core.SourceConfig{URL: s.ganglia, Props: driver.Properties{"cache_ttl": "0s"}}); err != nil {
		t.Fatal(err)
	}
	na, err := nws.NewAgent(s.sim, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = na.Close() })
	na.Sample()
	s.nwsAgent = na
	s.nws = "gridrm:nws://" + na.Addr()
	if err := s.gw.AddSource(core.SourceConfig{URL: s.nws, Props: driver.Properties{"cache_ttl": "0s"}}); err != nil {
		t.Fatal(err)
	}
	nl, err := netlogger.NewAgent(s.sim, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nl.Close() })
	nl.Sample()
	s.nlAgent = nl
	s.netlogger = "gridrm:netlogger://" + nl.Addr()
	if err := s.gw.AddSource(core.SourceConfig{URL: s.netlogger}); err != nil {
		t.Fatal(err)
	}
	sc, err := scms.NewAgent(s.sim, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sc.Close() })
	s.scms = "gridrm:scms://" + sc.Addr()
	if err := s.gw.AddSource(core.SourceConfig{URL: s.scms}); err != nil {
		t.Fatal(err)
	}
	return s
}

func (s *site) query(t *testing.T, sql string, sources ...string) *core.Response {
	t.Helper()
	resp, err := s.gw.QueryContext(context.Background(), core.QueryOptions{
		Principal: s.admin,
		SQL:       sql,
		Sources:   sources,
		Mode:      core.ModeRealTime,
	})
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return resp
}

func TestAllDriversServeProcessor(t *testing.T) {
	s := newSite(t, "intg", 3, 101)
	resp := s.query(t, "SELECT * FROM Processor")
	// 3 SNMP agents (1 row each) + ganglia (3) + nws (3) + netlogger (3)
	// + scms (3) = 15 rows.
	if resp.ResultSet.Len() != 15 {
		t.Fatalf("rows = %d, want 15; statuses %+v", resp.ResultSet.Len(), resp.Sources)
	}
	for _, st := range resp.Sources {
		if st.Err != "" {
			t.Errorf("source %s failed: %s", st.Source, st.Err)
		}
	}
	drivers := map[string]bool{}
	for _, st := range resp.Sources {
		drivers[st.Driver] = true
	}
	for _, want := range []string{"jdbc-snmp", "jdbc-ganglia", "jdbc-nws", "jdbc-netlogger", "jdbc-scms"} {
		if !drivers[want] {
			t.Errorf("driver %s unused; drivers = %v", want, drivers)
		}
	}
}

// TestHomogeneousView is E10: the same simulated host queried through every
// driver yields the same GLUE values where the native source carries them,
// and NULL where it does not.
func TestHomogeneousView(t *testing.T) {
	s := newSite(t, "e10", 2, 202)
	host := s.sim.HostNames()[0]
	snap, _ := s.sim.Snapshot(host)

	sources := map[string]string{
		"jdbc-snmp":      s.snmpURLs[0],
		"jdbc-ganglia":   s.ganglia,
		"jdbc-netlogger": s.netlogger,
		"jdbc-scms":      s.scms,
	}
	loads := map[string]float64{}
	for name, src := range sources {
		resp := s.query(t, "SELECT * FROM Processor WHERE HostName = '"+host+"'", src)
		if resp.ResultSet.Len() != 1 {
			t.Fatalf("%s rows = %d", name, resp.ResultSet.Len())
		}
		resp.ResultSet.Next()
		v, err := resp.ResultSet.GetFloat("LoadLast1Min")
		if err != nil {
			t.Fatal(err)
		}
		loads[name] = v
	}
	for name, v := range loads {
		if v != snap.Load1 {
			t.Errorf("%s LoadLast1Min = %v, want %v", name, v, snap.Load1)
		}
	}

	// Memory agreement incl. NWS (which has no Processor load).
	memSources := map[string]string{
		"jdbc-snmp": s.snmpURLs[0], "jdbc-ganglia": s.ganglia,
		"jdbc-netlogger": s.netlogger, "jdbc-scms": s.scms, "jdbc-nws": s.nws,
	}
	for name, src := range memSources {
		resp := s.query(t, "SELECT * FROM Memory WHERE HostName = '"+host+"'", src)
		if resp.ResultSet.Len() != 1 {
			t.Fatalf("%s memory rows = %d", name, resp.ResultSet.Len())
		}
		resp.ResultSet.Next()
		avail, err := resp.ResultSet.GetInt("RAMAvailable")
		if err != nil {
			t.Fatal(err)
		}
		if resp.ResultSet.WasNull() {
			t.Errorf("%s RAMAvailable NULL", name)
		} else if avail != snap.Mem.RAMAvailMB {
			t.Errorf("%s RAMAvailable = %d, want %d", name, avail, snap.Mem.RAMAvailMB)
		}
	}

	// Identity: SCMS and SNMP agree on the CPU model; Ganglia returns NULL.
	respSNMP := s.query(t, "SELECT * FROM Processor WHERE HostName = '"+host+"'", s.snmpURLs[0])
	respSNMP.ResultSet.Next()
	mSNMP, _ := respSNMP.ResultSet.GetString("Model")
	respSCMS := s.query(t, "SELECT * FROM Processor WHERE HostName = '"+host+"'", s.scms)
	respSCMS.ResultSet.Next()
	mSCMS, _ := respSCMS.ResultSet.GetString("Model")
	if mSNMP != snap.CPU.Model || mSCMS != snap.CPU.Model {
		t.Errorf("models: snmp %q, scms %q, want %q", mSNMP, mSCMS, snap.CPU.Model)
	}
	respG := s.query(t, "SELECT * FROM Processor WHERE HostName = '"+host+"'", s.ganglia)
	respG.ResultSet.Next()
	respG.ResultSet.GetString("Model")
	if !respG.ResultSet.WasNull() {
		t.Error("ganglia Model should be NULL")
	}
}

func TestUtilizationAgreementWithinTolerance(t *testing.T) {
	// Utilization fidelity differs by source (SNMP's hrProcessorLoad is an
	// integer percentage) — agreement is within 1 percentage point.
	s := newSite(t, "tol", 2, 303)
	host := s.sim.HostNames()[0]
	snap, _ := s.sim.Snapshot(host)
	for _, src := range []string{s.snmpURLs[0], s.ganglia, s.scms, s.netlogger} {
		resp := s.query(t, "SELECT Utilization FROM Processor WHERE HostName = '"+host+"'", src)
		resp.ResultSet.Next()
		v, _ := resp.ResultSet.GetFloat("Utilization")
		if math.Abs(v-snap.UtilPct) > 1.0 {
			t.Errorf("source %s Utilization = %v, want ≈%v", src, v, snap.UtilPct)
		}
	}
}

func TestConsolidationAcrossGroups(t *testing.T) {
	s := newSite(t, "gr", 2, 404)
	// Disk: 2 SNMP agents × 2 disks + ganglia aggregate (2 hosts) +
	// nws aggregate (2 hosts) = 8 rows.
	resp := s.query(t, "SELECT * FROM Disk")
	if resp.ResultSet.Len() != 8 {
		t.Errorf("disk rows = %d; statuses %+v", resp.ResultSet.Len(), resp.Sources)
	}
	// Process rows come only from SNMP (6 procs per host default).
	resp = s.query(t, "SELECT * FROM Process")
	if resp.ResultSet.Len() != 12 {
		t.Errorf("process rows = %d", resp.ResultSet.Len())
	}
	// OperatingSystem from SNMP (2) + ganglia (2) + scms (2).
	resp = s.query(t, "SELECT * FROM OperatingSystem")
	if resp.ResultSet.Len() != 6 {
		t.Errorf("os rows = %d", resp.ResultSet.Len())
	}
}

func TestDynamicDriverLocationOnProtocolLessURL(t *testing.T) {
	// A URL with no protocol hint: the DriverManager must find the right
	// driver by probing (Table 2's "supports the URL AND can connect").
	s := newSite(t, "dyn", 2, 505)
	bare := strings.Replace(s.scms, "gridrm:scms://", "gridrm://", 1)
	if err := s.gw.AddSource(core.SourceConfig{URL: bare,
		Props: driver.Properties{"timeout": "300ms"}}); err != nil {
		t.Fatal(err)
	}
	resp := s.query(t, "SELECT * FROM Processor", bare)
	if resp.Sources[0].Err != "" {
		t.Fatalf("dynamic selection failed: %s", resp.Sources[0].Err)
	}
	if resp.Sources[0].Driver != "jdbc-scms" {
		t.Errorf("selected %q", resp.Sources[0].Driver)
	}
	if name, ok := s.gw.DriverManager().CachedDriver(bare); !ok || name != "jdbc-scms" {
		t.Errorf("last-good cache = %q, %v", name, ok)
	}
}

func TestHostFailureFailover(t *testing.T) {
	s := newSite(t, "fo", 2, 606)
	host := s.sim.HostNames()[0]
	_ = s.sim.SetHostDown(host, true)
	// The per-host SNMP agent stops answering; the query against that
	// source fails, the others still answer.
	resp, err := s.gw.QueryContext(context.Background(), core.QueryOptions{
		Principal: s.admin,
		SQL:       "SELECT * FROM Processor",
		Sources:   []string{s.snmpURLs[0], s.scms},
		Mode:      core.ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	var downErr string
	for _, st := range resp.Sources {
		if st.Source == s.snmpURLs[0] {
			downErr = st.Err
		}
	}
	if downErr == "" {
		t.Error("down host not reported")
	}
	if resp.ResultSet.Len() != 1 { // scms serves the one remaining host
		t.Errorf("rows = %d", resp.ResultSet.Len())
	}
	info, _ := s.gw.Source(s.snmpURLs[0])
	if info.LastError == "" {
		t.Error("tree-view health not updated")
	}
}

func TestHistoricalAcrossDrivers(t *testing.T) {
	s := newSite(t, "hist", 2, 707)
	s.query(t, "SELECT * FROM Memory")
	s.sim.StepN(2)
	s.nwsAgent.Sample()
	s.nlAgent.Sample()
	s.query(t, "SELECT * FROM Memory")
	resp, err := s.gw.QueryContext(context.Background(), core.QueryOptions{
		Principal: s.admin,
		SQL:       "SELECT HostName, RAMAvailable, SourceURL FROM Memory",
		Mode:      core.ModeHistorical,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 harvests × (2 snmp + 2 ganglia + 2 nws + 2 netlogger + 2 scms).
	if resp.ResultSet.Len() != 20 {
		t.Errorf("historical rows = %d", resp.ResultSet.Len())
	}
}

func TestEventsFlowFromSimToGateway(t *testing.T) {
	s := newSite(t, "ev", 3, 808)
	if err := s.gw.Events().AttachInbound(&netloggerdrv.InboundEvents{URL: s.netlogger}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	_ = s.sim.SetHostDown(s.sim.HostNames()[2], true)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		evs := s.gw.Events().History(event.Filter{Name: string(sim.EventHostDown)}, time.Time{})
		if len(evs) > 0 {
			if evs[0].Host != s.sim.HostNames()[2] {
				t.Errorf("event host %q", evs[0].Host)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("host-down event never reached the gateway")
}

func TestFullFederationOverHTTP(t *testing.T) {
	// Two complete sites, two servlet gateways, one GMA directory: a
	// client at site A reads site B's SNMP-backed processor data.
	siteA := newSite(t, "siteA", 2, 901)
	siteB := newSite(t, "siteB", 3, 902)

	dir := gma.NewDirectory(time.Minute, nil)
	srvA := httptest.NewServer(web.NewServer(siteA.gw, nil, dir.Handler()))
	defer srvA.Close()
	srvB := httptest.NewServer(web.NewServer(siteB.gw, nil, nil))
	defer srvB.Close()

	regB := gma.NewRegistrar(dir, gma.Registration{Name: "siteB", Endpoint: srvB.URL,
		Groups: glue.GroupNames()}, time.Minute)
	if err := regB.Start(); err != nil {
		t.Fatal(err)
	}
	defer regB.Stop()

	siteA.gw.SetGlobalRouter(gma.NewContextRouter(dir, web.RemoteQueryContext, "siteA"))

	client := &web.Client{BaseURL: srvA.URL, Principal: siteA.admin}
	resp, err := client.Query(context.Background(), core.QueryOptions{
		SQL:  "SELECT HostName, LoadLast1Min FROM Processor ORDER BY HostName",
		Site: "siteB",
		Mode: core.ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Site != "siteB" {
		t.Errorf("answered by %q", resp.Site)
	}
	// 3 hosts × 5 driver views at site B.
	if resp.ResultSet.Len() != 15 {
		t.Errorf("federated rows = %d", resp.ResultSet.Len())
	}
	resp.ResultSet.Next()
	if h, _ := resp.ResultSet.GetString("HostName"); !strings.HasPrefix(h, "siteB-") {
		t.Errorf("host %q", h)
	}
	if siteA.gw.Stats().Routed != 1 {
		t.Errorf("routed = %d", siteA.gw.Stats().Routed)
	}

	// VO-wide query: one SQL statement consolidated across both sites,
	// with the ordering applied globally.
	resp, err = client.Query(context.Background(), core.QueryOptions{
		SQL:  "SELECT HostName, LoadLast1Min FROM Processor WHERE LoadLast1Min IS NOT NULL ORDER BY HostName",
		Site: core.AllSites,
		Mode: core.ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	// siteA: 2 hosts × 4 load-bearing views; siteB: 3 × 4 (NWS maps no
	// load → filtered by IS NOT NULL).
	if resp.ResultSet.Len() != 20 {
		t.Errorf("VO-wide rows = %d", resp.ResultSet.Len())
	}
	resp.ResultSet.Next()
	first, _ := resp.ResultSet.GetString("HostName")
	if !strings.HasPrefix(first, "siteA-") {
		t.Errorf("global order starts at %q", first)
	}
}
