package integration_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/event"
	"gridrm/internal/sim"
	"gridrm/internal/web"
)

// chaosCombinedScenario declares the combined-faults fleet: two federated
// sites, with site B tuned the way the graceful-degradation acceptance
// test needs (long stale grace so history rows stay servable, a twitchy
// breaker so chaos trips it fast). The test drives the phases itself; the
// scenario only replaces the hand-rolled sitekit/httptest fleet setup.
const chaosCombinedScenario = `
name: chaos-combined
description: combined panic+error+latency faults at one federated site
seed: 1
duration: 2s
fleet:
  sites:
    - name: chaosA
      sources: 1
      hosts: 2
    - name: chaosB
      sources: 1
      hosts: 2
      stale_grace: 10m
      harvest_timeout: 2s
      breaker_threshold: 2
      breaker_cooldown: 150ms
federation:
  enabled: true
  entry_site: chaosA
`

// TestChaosGatewaySurvivesCombinedFaults is the graceful-degradation
// acceptance scenario end to end: a federated two-site deployment where every
// driver at one site is wrapped in fault injection — panics, errors and
// latency at once — while concurrent clients keep querying. The gateway must
// never crash, must keep answering with degraded rows, and the health prober
// must bring the tripped breakers back once the faults clear.
func TestChaosGatewaySurvivesCombinedFaults(t *testing.T) {
	sc, err := sim.ParseScenario([]byte(chaosCombinedScenario))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.NewHarness(sc, rand.New(rand.NewSource(sc.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)

	gwB := h.Sites["chaosB"].Gateway
	faults := h.Sites["chaosB"].Faults
	client := &web.Client{BaseURL: h.Entry.Server.URL(), Principal: sim.SimPrincipal}
	req := core.QueryOptions{Principal: sim.SimPrincipal,
		SQL: "SELECT * FROM Processor", Mode: core.ModeCached}
	ctx := context.Background()

	// Phase 1 — clean pass primes site B's cache and history.
	resp, err := gwB.QueryContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cleanRows := resp.ResultSet.Len()
	if cleanRows == 0 {
		t.Fatalf("clean pass returned no rows: %+v", resp.Sources)
	}

	// Phase 2 — chaos: every driver call panics, erring and slow at once,
	// and the cache is emptied so every query must walk the degradation
	// ladder. Concurrent clients hammer the gateway while it burns.
	faults.SetPanicEveryQuery(1)
	faults.SetErrorEvery(2)
	faults.SetQueryLatency(2 * time.Millisecond)
	gwB.Cache().Clear()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := gwB.QueryContext(ctx, req); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query escalated during chaos: %v", err)
	}

	// Degraded rows were served from history (the cache was cleared), each
	// annotated with its tier and the underlying failure.
	resp, err = gwB.QueryContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() == 0 {
		t.Errorf("no degraded rows during chaos: %+v", resp.Sources)
	}
	var degraded int
	for _, s := range resp.Sources {
		if s.Degraded != "" {
			degraded++
			if s.Err == "" {
				t.Errorf("degraded source %s hides its failure", s.Source)
			}
			if s.Age <= 0 {
				t.Errorf("degraded source %s has no age", s.Source)
			}
		}
	}
	if degraded == 0 {
		t.Errorf("no source reported degraded: %+v", resp.Sources)
	}
	st := gwB.Stats()
	if st.DriverPanics == 0 {
		t.Error("no driver panic was recorded")
	}
	if st.StaleServes+st.HistoryFallbacks == 0 {
		t.Error("no degraded serve was counted")
	}

	// The panic surfaced as an Alert event with a stack.
	gwB.Events().Drain()
	evs := gwB.Events().History(event.Filter{Name: "driver-panic"}, time.Time{})
	if len(evs) == 0 {
		t.Fatal("no driver-panic event published")
	}
	if evs[0].Severity != event.SeverityAlert || !strings.Contains(evs[0].Detail, "goroutine") {
		t.Errorf("driver-panic event %+v", evs[0])
	}

	// A federated client keeps getting answers through the burning site.
	remote, err := client.Query(ctx, core.QueryOptions{SQL: "SELECT * FROM Processor",
		Site: "chaosB", Mode: core.ModeCached})
	if err != nil {
		t.Fatalf("federated query failed during chaos: %v", err)
	}
	if remote.Site != "chaosB" || remote.ResultSet.Len() == 0 {
		t.Errorf("federated degraded answer: site=%q rows=%d", remote.Site, remote.ResultSet.Len())
	}

	// Phase 3 — the faults clear; the prober (not client traffic) walks the
	// open breakers through half-open back to closed.
	faults.SetPanicEveryQuery(0)
	faults.SetErrorEvery(0)
	faults.SetQueryLatency(0)

	prober := gwB.Prober()
	deadline := time.Now().Add(10 * time.Second)
	for {
		prober.ProbeAll(ctx)
		open := 0
		for _, info := range gwB.Sources() {
			if info.Breaker != "closed" {
				open++
			}
		}
		if open == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breakers never recovered: %+v", gwB.Sources())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, hs := range prober.Snapshot() {
		if hs.State != "healthy" {
			t.Errorf("source %s still %s after recovery", hs.URL, hs.State)
		}
	}

	// Fresh real-time rows flow again.
	resp, err = gwB.QueryContext(ctx, core.QueryOptions{Principal: sim.SimPrincipal,
		SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != cleanRows {
		t.Errorf("post-recovery rows = %d, want %d: %+v",
			resp.ResultSet.Len(), cleanRows, resp.Sources)
	}
	for _, s := range resp.Sources {
		if s.Err != "" || s.Degraded != "" {
			t.Errorf("post-recovery status %+v", s)
		}
	}

	// Phase 4 — ordered shutdown: drains cleanly, then refuses new work.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := gwB.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := gwB.QueryContext(ctx, req); !errors.Is(err, core.ErrGatewayClosed) {
		t.Errorf("post-shutdown query err = %v, want ErrGatewayClosed", err)
	}
}
