package integration_test

import (
	"path/filepath"
	"testing"

	"gridrm/internal/sim"
)

// TestRestartRecoveryScenario runs the repo's crash-recovery acceptance
// scenario end to end: a durable-history gateway is loaded, its sources are
// killed, the gateway is crash-restarted against the same history directory,
// and the replacement must serve the pre-crash samples through the
// degradation ladder — proven by the scenario's own assertions
// (min_replayed_records, min_history_fallbacks, min_wal_appends).
func TestRestartRecoveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario run")
	}
	sc, err := sim.LoadScenario(filepath.Join("..", "..", "scenarios", "restart_recovery.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(sc, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("scenario failed:\n%s", r.Summary())
	}
	if r.Counters["replayed_records"] == 0 {
		t.Error("restart restored nothing from the WAL")
	}
	if r.Counters["history_fallbacks"] == 0 {
		t.Error("restored history never served a query")
	}
	if r.Load.Errors > 0 {
		t.Errorf("clients saw %d errors across the crash-restart", r.Load.Errors)
	}
}
