package integration_test

import (
	"bufio"
	"bytes"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandLineTools builds the three deployment binaries and runs a
// whole site as separate processes: gridrm-agents simulating the site,
// gridrm-gateway serving it over HTTP (hosting the GMA directory), and
// gridrm-query as the client — the deployment story the README documents.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries; skipped in -short mode")
	}
	bin := t.TempDir()
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	build := exec.Command("go", "build", "-o", bin,
		"./cmd/gridrm-agents", "./cmd/gridrm-gateway", "./cmd/gridrm-query")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	manifest := filepath.Join(bin, "site.json")

	// 1. The agents process.
	agents := exec.Command(filepath.Join(bin, "gridrm-agents"),
		"-site", "cli", "-hosts", "3", "-seed", "7",
		"-tick", "100ms", "-manifest", manifest)
	var agentsLog bytes.Buffer
	agents.Stdout = &agentsLog
	agents.Stderr = &agentsLog
	if err := agents.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = agents.Process.Kill()
		_, _ = agents.Process.Wait()
	})
	waitFor(t, 10*time.Second, func() bool {
		_, err := os.Stat(manifest)
		return err == nil
	}, "agents manifest")

	// 2. The gateway process, hosting the directory, on a port that was
	// free a moment ago.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	gateway := exec.Command(filepath.Join(bin, "gridrm-gateway"),
		"-manifest", manifest, "-listen", addr, "-host-directory")
	var gwLog bytes.Buffer
	gateway.Stdout = &gwLog
	gateway.Stderr = &gwLog
	if err := gateway.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = gateway.Process.Kill()
		_, _ = gateway.Process.Wait()
	})
	base := "http://" + addr
	waitFor(t, 15*time.Second, func() bool {
		resp, err := http.Get(base + "/status")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}, "gateway /status")

	// 3. The client.
	query := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, "gridrm-query"),
			append([]string{"-gateway", base}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("gridrm-query %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := query("-sql", "SELECT HostName, LoadLast1Min FROM Processor ORDER BY HostName", "-mode", "real-time")
	if !strings.Contains(out, "cli-node00") || !strings.Contains(out, "jdbc-snmp") {
		t.Errorf("query output missing expected content:\n%s", out)
	}
	rows := 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "cli-node") {
			rows++
		}
	}
	// 3 SNMP + 3 ganglia + 3 netlogger + 3 scms + 3 nws = 15 rows.
	if rows != 15 {
		t.Errorf("query returned %d host rows:\n%s", rows, out)
	}

	if out := query("-list-sources"); strings.Count(out, "gridrm:") != 7 {
		t.Errorf("sources listing:\n%s", out)
	}
	if out := query("-list-drivers"); !strings.Contains(out, "jdbc-ganglia") {
		t.Errorf("drivers listing:\n%s", out)
	}
	if out := query("-tree"); !strings.Contains(out, "[ok]") {
		t.Errorf("tree view:\n%s", out)
	}
	if out := query("-sites"); !strings.Contains(out, "cli") {
		t.Errorf("sites listing:\n%s", out)
	}
	if out := query("-status"); !strings.Contains(out, "site cli") {
		t.Errorf("status output:\n%s", out)
	}

	// Explicit real-time poll of one source (Fig 9's poll icon).
	srcOut := query("-list-sources")
	var snmpURL string
	for _, line := range strings.Split(srcOut, "\n") {
		if strings.HasPrefix(line, "gridrm:snmp://") {
			snmpURL = strings.Fields(line)[0]
			break
		}
	}
	if snmpURL == "" {
		t.Fatalf("no snmp source in:\n%s", srcOut)
	}
	if out := query("-poll", snmpURL, "-group", "Memory"); !strings.Contains(out, "RAMSize") {
		t.Errorf("poll output:\n%s", out)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
