package integration_test

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gridrm/internal/breaker"
	"gridrm/internal/core"
	"gridrm/internal/event"
	"gridrm/internal/glue"
	"gridrm/internal/gma"
	"gridrm/internal/security"
	"gridrm/internal/sitekit"
	"gridrm/internal/web"
)

// dirServer is a GMA directory replica on a stable address that can be
// killed and restarted on the same port, simulating a replica crash.
type dirServer struct {
	t    *testing.T
	addr string
	dir  *gma.Directory
	srv  *http.Server
}

func startDirServer(t *testing.T, addr string) *dirServer {
	t.Helper()
	d := &dirServer{t: t, dir: gma.NewDirectory(time.Minute, nil)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	d.addr = ln.Addr().String()
	d.serve(ln)
	return d
}

func (d *dirServer) serve(ln net.Listener) {
	d.srv = &http.Server{Handler: d.dir.Handler()}
	go func() { _ = d.srv.Serve(ln) }()
}

func (d *dirServer) kill() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = d.srv.Shutdown(ctx)
}

func (d *dirServer) restart() {
	// The freed port can take a moment to become bindable again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", d.addr)
		if err == nil {
			d.serve(ln)
			return
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("could not rebind %s: %v", d.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (d *dirServer) url() string { return "http://" + d.addr }

// siteBErr extracts site dirB's leg from an all-sites response: "" when the
// leg answered cleanly, the error string when it failed, and a synthetic
// error when the leg is missing entirely.
func siteBErr(resp *core.Response) string {
	found := false
	for _, s := range resp.Sources {
		if s.Source == "site:dirB" && s.Err != "" {
			return s.Err
		}
		if len(s.Source) >= len("site:dirB") && s.Source[:len("site:dirB")] == "site:dirB" {
			found = true
		}
	}
	if !found {
		return "leg missing from response"
	}
	return ""
}

// TestChaosDirectoryOutage is the federation-resilience acceptance scenario:
// with ALL directory replicas down, a federated all-sites query keeps
// answering from the router's lookup cache; a killed remote gateway trips
// its per-endpoint breaker so fan-outs fast-fail instead of burning the
// deadline; and when a replica returns, the resilient registrar — which
// never failed Start — re-registers automatically.
func TestChaosDirectoryOutage(t *testing.T) {
	admin := security.Principal{Name: "admin", Roles: []string{"operator"}}

	// Two directory replicas behind a MultiDirectory.
	rep1 := startDirServer(t, "127.0.0.1:0")
	rep2 := startDirServer(t, "127.0.0.1:0")
	t.Cleanup(rep1.kill)
	t.Cleanup(rep2.kill)
	newMultiDir := func() *gma.MultiDirectory {
		return gma.NewMultiDirectory(
			&gma.DirectoryClient{BaseURL: rep1.url(), Timeout: time.Second},
			&gma.DirectoryClient{BaseURL: rep2.url(), Timeout: time.Second},
		)
	}

	// Two sites; site A hosts the resilient router under test.
	siteA, err := sitekit.Start(sitekit.Options{Name: "dirA", Hosts: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(siteA.Close)
	gwA, err := sitekit.NewGateway(siteA.Manifest(), siteA.Opts, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gwA.Close)

	siteB, err := sitekit.Start(sitekit.Options{Name: "dirB", Hosts: 1, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(siteB.Close)
	gwB, err := sitekit.NewGateway(siteB.Manifest(), siteB.Opts, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gwB.Close)

	srvA := httptest.NewServer(web.NewServer(gwA, nil, nil))
	defer srvA.Close()
	srvB := httptest.NewServer(web.NewServer(gwB, nil, nil))
	defer srvB.Close()

	dirA := newMultiDir()
	router := gma.NewResilientRouter(dirA, web.RemoteQueryContext, "dirA", gma.Config{
		LookupTTL: 50 * time.Millisecond,
		Breaker:   breaker.Options{Threshold: 2, Cooldown: 30 * time.Second},
	})
	gwA.SetGlobalRouter(router)

	regA := gma.NewRegistrar(dirA, gma.ProducerInfo{Site: "dirA", Endpoint: srvA.URL,
		Groups: glue.GroupNames()}, 100*time.Millisecond)
	var unreachableAlerts int
	regA.SetStateListener(func(reachable bool, err error) {
		if !reachable {
			unreachableAlerts++
			gwA.Events().Publish(event.Event{Source: "gma", Name: "directory-unreachable",
				Severity: event.SeverityAlert, Time: time.Now(), Detail: err.Error()})
		}
	})
	if err := regA.Start(); err != nil {
		t.Fatal(err)
	}
	defer regA.Stop()
	regB := gma.NewRegistrar(newMultiDir(), gma.ProducerInfo{Site: "dirB", Endpoint: srvB.URL,
		Groups: glue.GroupNames()}, 100*time.Millisecond)
	if err := regB.Start(); err != nil {
		t.Fatal(err)
	}
	defer regB.Stop()

	// Phase 1 — warm: a federated all-sites query reaches both sites and
	// primes the router's lookup + sites caches.
	allSites := core.Request{Principal: admin, SQL: "SELECT * FROM Processor",
		Site: "*", Mode: core.ModeCached}
	resp, err := gwA.Query(allSites)
	if err != nil {
		t.Fatal(err)
	}
	if err := siteBErr(resp); err != "" {
		t.Fatalf("warm all-sites: site dirB failed: %s", err)
	}

	// Phase 2 — total directory outage: kill BOTH replicas. Past the lookup
	// TTL every directory read fails, yet the all-sites query keeps answering
	// from stale cache entries.
	rep1.kill()
	rep2.kill()
	time.Sleep(100 * time.Millisecond) // let the 50ms TTL lapse
	resp, err = gwA.Query(allSites)
	if err != nil {
		t.Fatalf("all-sites query during directory outage: %v", err)
	}
	if err := siteBErr(resp); err != "" {
		t.Fatalf("all-sites during outage: site dirB failed: %s", err)
	}
	if st := router.Stats(); st.StaleLookups == 0 {
		t.Errorf("no stale lookups counted during outage: %+v", st)
	}

	// The registrar flips to unreachable (Alert on the event bus) but the
	// gateway keeps serving; Start never failed.
	deadline := time.Now().Add(5 * time.Second)
	for regA.Registered() {
		if time.Now().After(deadline) {
			t.Fatal("registrar never noticed the outage")
		}
		time.Sleep(10 * time.Millisecond)
	}
	gwA.Events().Drain()
	if evs := gwA.Events().History(event.Filter{Name: "directory-unreachable"}, time.Time{}); len(evs) == 0 {
		t.Error("no directory-unreachable alert published")
	}

	// Phase 3 — kill the remote gateway too: repeated failures trip the
	// per-endpoint breaker, and further fan-outs fast-fail on that site
	// instead of consuming the whole deadline.
	srvB.Close()
	for i := 0; i < 2; i++ {
		if _, err := router.RemoteQueryContext(context.Background(), "dirB",
			core.Request{Principal: admin, SQL: "SELECT * FROM Processor", Site: "dirB"}); err == nil {
			t.Fatal("query to killed gateway succeeded")
		}
	}
	if got := router.EndpointBreakerState(srvB.URL); got != "open" {
		t.Fatalf("breaker state after kill = %q, want open", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	start := time.Now()
	resp, err = gwA.QueryContext(ctx, allSites)
	elapsed := time.Since(start)
	cancel()
	if err != nil {
		t.Fatalf("all-sites with open breaker: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("open breaker did not fast-fail: all-sites took %s", elapsed)
	}
	if err := siteBErr(resp); err == "" {
		t.Errorf("dead site not reported: %+v", resp.Sources)
	}
	if st := router.Stats(); st.RemoteBreakerSkipped == 0 {
		t.Errorf("breaker never skipped: %+v", st)
	}

	// Phase 4 — one replica returns: the registrar's background retry
	// re-registers without intervention.
	rep1.restart()
	deadline = time.Now().Add(10 * time.Second)
	for !regA.Registered() {
		if time.Now().After(deadline) {
			t.Fatal("registrar never recovered after replica restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok, err := rep1.dir.Lookup("dirA"); err != nil || !ok {
		t.Errorf("restarted replica lookup = %v, %v", ok, err)
	}

	// Phase 5 — registrar restart cycle under load (the old closed-channel
	// bug made the second Start a no-op loop).
	regA.Stop()
	if err := regA.Start(); err != nil {
		t.Fatalf("registrar restart: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for !regA.Registered() {
		if time.Now().After(deadline) {
			t.Fatal("restarted registrar never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if unreachableAlerts == 0 {
		t.Error("state listener never reported the outage")
	}
}
