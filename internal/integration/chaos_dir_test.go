package integration_test

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/event"
	"gridrm/internal/sim"
)

// chaosDirScenario declares the federation-resilience fleet: two sites
// behind two directory replicas, a short router lookup TTL so the outage
// phase exercises stale-on-error, and dirA as the routing entry site.
const chaosDirScenario = `
name: chaos-directory-outage
description: total directory outage plus a dead remote gateway
seed: 1
duration: 2s
fleet:
  sites:
    - name: dirA
      sources: 1
      hosts: 1
    - name: dirB
      sources: 1
      hosts: 1
federation:
  enabled: true
  directories: 2
  lookup_ttl: 50ms
  entry_site: dirA
`

// siteBErr extracts site dirB's leg from an all-sites response: "" when the
// leg answered cleanly, the error string when it failed, and a synthetic
// error when the leg is missing entirely.
func siteBErr(resp *core.Response) string {
	found := false
	for _, s := range resp.Sources {
		if s.Source == "site:dirB" && s.Err != "" {
			return s.Err
		}
		if len(s.Source) >= len("site:dirB") && s.Source[:len("site:dirB")] == "site:dirB" {
			found = true
		}
	}
	if !found {
		return "leg missing from response"
	}
	return ""
}

// TestChaosDirectoryOutage is the federation-resilience acceptance scenario:
// with ALL directory replicas down, a federated all-sites query keeps
// answering from the router's lookup cache; a killed remote gateway trips
// its per-endpoint breaker so fan-outs fast-fail instead of burning the
// deadline; and when a replica returns, the resilient registrar — which
// never failed Start — re-registers automatically. The fleet comes from the
// sim harness; the lookup TTL lapses on the harness clock, not wall sleeps.
func TestChaosDirectoryOutage(t *testing.T) {
	sc, err := sim.ParseScenario([]byte(chaosDirScenario))
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock()
	var unreachableAlerts atomic.Int64
	unreachable := make(chan error, 16)
	h, err := sim.NewHarnessOpts(sc, rand.New(rand.NewSource(sc.Seed)), sim.HarnessOptions{
		Clock: clk.Now,
		RegistrarListener: func(site string, reachable bool, err error) {
			if site != "dirA" || reachable {
				return
			}
			unreachableAlerts.Add(1)
			select {
			case unreachable <- err:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)

	gwA := h.Sites["dirA"].Gateway
	regA := h.Sites["dirA"].Registrar
	router := h.Router
	ctx := context.Background()

	// Phase 1 — warm: a federated all-sites query reaches both sites and
	// primes the router's lookup + sites caches.
	allSites := core.QueryOptions{Principal: sim.SimPrincipal,
		SQL: "SELECT * FROM Processor", Site: core.AllSites, Mode: core.ModeCached}
	resp, err := gwA.QueryContext(ctx, allSites)
	if err != nil {
		t.Fatal(err)
	}
	if err := siteBErr(resp); err != "" {
		t.Fatalf("warm all-sites: site dirB failed: %s", err)
	}

	// Phase 2 — total directory outage: drop BOTH replicas. Past the lookup
	// TTL every directory read fails, yet the all-sites query keeps answering
	// from stale cache entries. The TTL lapses by advancing the harness
	// clock; no wall-clock sleep is involved.
	h.SetDirectoryDown(0, true)
	h.SetDirectoryDown(1, true)
	clk.Advance(100 * time.Millisecond)
	resp, err = gwA.QueryContext(ctx, allSites)
	if err != nil {
		t.Fatalf("all-sites query during directory outage: %v", err)
	}
	if err := siteBErr(resp); err != "" {
		t.Fatalf("all-sites during outage: site dirB failed: %s", err)
	}
	if st := router.Stats(); st.StaleLookups == 0 {
		t.Errorf("no stale lookups counted during outage: %+v", st)
	}

	// The registrar flips to unreachable but the gateway keeps serving;
	// Start never failed. The flip is turned into an Alert on the event bus.
	deadline := time.Now().Add(10 * time.Second)
	for regA.Registered() {
		if time.Now().After(deadline) {
			t.Fatal("registrar never noticed the outage")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case ferr := <-unreachable:
		gwA.Events().Publish(event.Event{Source: "gma", Name: "directory-unreachable",
			Severity: event.SeverityAlert, Time: time.Now(), Detail: ferr.Error()})
	case <-time.After(5 * time.Second):
		t.Fatal("state listener never reported the outage")
	}
	gwA.Events().Drain()
	if evs := gwA.Events().History(event.Filter{Name: "directory-unreachable"}, time.Time{}); len(evs) == 0 {
		t.Error("no directory-unreachable alert published")
	}

	// Phase 3 — partition the remote gateway too: repeated failures trip the
	// per-endpoint breaker, and further fan-outs fast-fail on that site
	// instead of consuming the whole deadline.
	h.PartitionSite("dirB", true)
	endpointB := h.Sites["dirB"].Server.URL()
	for i := 0; i < 5; i++ { // router breaker default threshold
		if _, err := router.RemoteQueryContext(ctx, "dirB",
			core.QueryOptions{Principal: sim.SimPrincipal,
				SQL: "SELECT * FROM Processor", Site: "dirB"}); err == nil {
			t.Fatal("query to partitioned gateway succeeded")
		}
	}
	if got := router.EndpointBreakerState(endpointB); got != "open" {
		t.Fatalf("breaker state after kill = %q, want open", got)
	}
	qctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	start := time.Now()
	resp, err = gwA.QueryContext(qctx, allSites)
	elapsed := time.Since(start)
	cancel()
	if err != nil {
		t.Fatalf("all-sites with open breaker: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("open breaker did not fast-fail: all-sites took %s", elapsed)
	}
	if err := siteBErr(resp); err == "" {
		t.Errorf("dead site not reported: %+v", resp.Sources)
	}
	if st := router.Stats(); st.RemoteBreakerSkipped == 0 {
		t.Errorf("breaker never skipped: %+v", st)
	}

	// Phase 4 — one replica returns: the registrar's background retry
	// re-registers without intervention.
	h.SetDirectoryDown(0, false)
	deadline = time.Now().Add(10 * time.Second)
	for !regA.Registered() {
		if time.Now().After(deadline) {
			t.Fatal("registrar never recovered after replica restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok, err := h.Replicas[0].Dir.Lookup("dirA"); err != nil || !ok {
		t.Errorf("restarted replica lookup = %v, %v", ok, err)
	}

	// Phase 5 — registrar restart cycle under load (the old closed-channel
	// bug made the second Start a no-op loop).
	regA.Stop()
	if err := regA.Start(); err != nil {
		t.Fatalf("registrar restart: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for !regA.Registered() {
		if time.Now().After(deadline) {
			t.Fatal("restarted registrar never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if unreachableAlerts.Load() == 0 {
		t.Error("state listener never reported the outage")
	}
}
