package trace

import (
	"context"
	"strconv"
	"strings"
)

type spanKey struct{}
type remoteKey struct{}

// ContextWithSpan returns ctx carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the active span, or nil when the request is not
// being traced. The nil span is safe to use.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan begins a child of the active span, inheriting its trace and
// site. When the request is untraced it returns (ctx, nil) and costs only
// the context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{rec: parent.rec, data: SpanData{
		TraceID: parent.data.TraceID,
		SpanID:  parent.rec.nextSpanID(),
		Parent:  parent.data.SpanID,
		Name:    name,
		Site:    parent.data.Site,
		Start:   parent.rec.tracer.clock(),
	}}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// AttachRemote stitches spans recorded by a remote gateway into the active
// trace, marking them Remote. No-op when the request is untraced.
func AttachRemote(ctx context.Context, spans []SpanData) {
	sp := SpanFromContext(ctx)
	if sp == nil || len(spans) == 0 {
		return
	}
	sp.rec.attachRemote(spans)
}

// Carrier is the trace context that crosses a gateway-to-gateway hop.
type Carrier struct {
	// TraceID is the originating trace.
	TraceID string
	// Parent is the calling gateway's span the remote work nests under.
	Parent string
	// Sampled tells the remote gateway whether to record spans.
	Sampled bool
}

// Header renders the carrier as the X-GridRM-Trace header value.
func (c Carrier) Header() string {
	s := "0"
	if c.Sampled {
		s = "1"
	}
	return c.TraceID + "-" + c.Parent + "-" + s
}

// ParseCarrier parses an X-GridRM-Trace header value. ok is false for an
// empty or malformed value.
func ParseCarrier(h string) (c Carrier, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
		return Carrier{}, false
	}
	sampled, err := strconv.ParseBool(parts[2])
	if err != nil {
		return Carrier{}, false
	}
	return Carrier{TraceID: parts[0], Parent: parts[1], Sampled: sampled}, true
}

// CarrierFromContext builds the outbound carrier for the active span; ok is
// false when the request is untraced (send no header).
func CarrierFromContext(ctx context.Context) (Carrier, bool) {
	sp := SpanFromContext(ctx)
	if sp == nil {
		return Carrier{}, false
	}
	return Carrier{TraceID: sp.data.TraceID, Parent: sp.data.SpanID, Sampled: true}, true
}

// ContextWithRemote marks ctx as serving an inbound remote request carrying
// c; the gateway's next StartTrace continues that trace instead of starting
// its own.
func ContextWithRemote(ctx context.Context, c Carrier) context.Context {
	return context.WithValue(ctx, remoteKey{}, c)
}

func remoteFromContext(ctx context.Context) (Carrier, bool) {
	c, ok := ctx.Value(remoteKey{}).(Carrier)
	return c, ok
}
