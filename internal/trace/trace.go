// Package trace is a stdlib-only distributed-tracing layer for the GridRM
// gateway: spans with trace/parent identity, a bounded in-memory store of
// finished traces, and a ring-buffer slow-query log. The query path threads
// a span through context.Context (internal/core, internal/pool,
// internal/gma all add children), and trace context propagates across
// gateway-to-gateway hops in the X-GridRM-Trace header so a federated
// all-sites query yields one stitched span tree: remote gateways record
// their own spans and return them on the wire, and the parent gateway
// attaches them to its trace before publishing.
//
// The whole API is nil-tolerant: an unsampled query carries a nil *Span and
// every span operation on it is a no-op, so the untraced hot path costs a
// context lookup and a nil check per stage.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// HeaderName is the HTTP header that propagates trace context between
// gateways: "<traceID>-<parentSpanID>-<sampled>".
const HeaderName = "X-GridRM-Trace"

const (
	defaultCapacity      = 256
	defaultMaxSpans      = 512
	defaultSlowLog       = 128
	defaultSlowThreshold = 500 * time.Millisecond
)

// Options configures a Tracer. Zero values take the defaults noted;
// negative values disable where noted.
type Options struct {
	// Capacity is how many finished traces the in-memory store retains;
	// the oldest trace is evicted first (default 256).
	Capacity int
	// MaxSpans caps the spans recorded per trace; spans beyond the cap are
	// counted in Stats.DroppedSpans (default 512).
	MaxSpans int
	// SlowLog is the slow-query ring buffer size (default 128).
	SlowLog int
	// SlowThreshold is the elapsed time at or above which a finished query
	// is recorded in the slow-query log (default 500ms; negative disables
	// the log).
	SlowThreshold time.Duration
	// Sample is the fraction of root queries traced, 0..1 (default 1.0;
	// negative disables tracing). Queries carrying a propagated remote
	// trace context follow the parent gateway's decision instead, and
	// callers can force tracing per query with DecideOn.
	Sample float64
	// Clock is injectable for tests; nil uses time.Now.
	Clock func() time.Time
}

// Decision selects how one query's sampling is decided.
type Decision int

const (
	// DecideSample (the default) applies the tracer's Sample rate.
	DecideSample Decision = iota
	// DecideOn forces the query to be traced.
	DecideOn
	// DecideOff disables tracing for the query.
	DecideOff
)

// SpanData is a finished span: the stored and wire form.
type SpanData struct {
	// TraceID identifies the whole request tree.
	TraceID string `json:"traceId"`
	// SpanID identifies this span.
	SpanID string `json:"spanId"`
	// Parent is the parent span's ID ("" for a locally rooted trace).
	Parent string `json:"parent,omitempty"`
	// Name is the operation, e.g. "query", "harvest", "pool-checkout".
	Name string `json:"name"`
	// Site is the gateway that recorded the span.
	Site string `json:"site,omitempty"`
	// Remote marks a span stitched in from a remote gateway's response.
	Remote bool `json:"remote,omitempty"`
	// Start is when the operation began.
	Start time.Time `json:"start"`
	// Duration is how long it took.
	Duration time.Duration `json:"durationNs"`
	// Attrs carries string key/value annotations (sql, url, driver ...).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Err is the operation's failure, if any.
	Err string `json:"err,omitempty"`
}

// Span is a live span being recorded. A nil *Span is valid: every method
// no-ops, which is how unsampled requests skip all bookkeeping.
type Span struct {
	rec *recorder

	mu    sync.Mutex
	ended bool
	data  SpanData
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.data.Attrs == nil {
			s.data.Attrs = make(map[string]string, 2)
		}
		s.data.Attrs[key] = value
	}
	s.mu.Unlock()
}

// SetError records err on the span (no-op for nil err).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Err = err.Error()
	}
	s.mu.Unlock()
}

// TraceID returns the span's trace ID ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's ID ("" for a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// ParentID returns the parent span's ID. A root span with a non-empty
// parent is continuing a trace propagated from a remote gateway.
func (s *Span) ParentID() string {
	if s == nil {
		return ""
	}
	return s.data.Parent
}

// IsRoot reports whether this span is its trace's local root.
func (s *Span) IsRoot() bool {
	return s != nil && s.rec.root == s
}

// End finishes the span and hands it to the trace's recorder; ending the
// root span publishes the collected trace to the tracer's store. End is
// idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Duration = s.rec.tracer.clock().Sub(s.data.Start)
	// The Attrs map moves into the recorded SpanData without copying:
	// SetAttr mutates only while !ended, so it is frozen from here on.
	d := s.data
	s.mu.Unlock()
	s.rec.add(d)
	if s.rec.root == s {
		s.rec.publish()
	}
}

// Collected snapshots every span recorded in this span's trace so far,
// including spans stitched in from remote gateways. Call it on the root
// after End to ship the trace on the wire.
func (s *Span) Collected() []SpanData {
	if s == nil {
		return nil
	}
	return s.rec.snapshot()
}

// recorder accumulates the finished spans of one trace.
type recorder struct {
	tracer  *Tracer
	traceID string
	root    *Span
	// prefix + seq generate span IDs: one crypto/rand draw per serving
	// leg instead of one per span, with the counter providing in-trace
	// uniqueness. "." keeps IDs clear of the carrier's "-" separator.
	prefix string
	seq    atomic.Uint64

	mu    sync.Mutex
	spans []SpanData
}

func (r *recorder) nextSpanID() string {
	return r.prefix + "." + strconv.FormatUint(r.seq.Add(1), 10)
}

func (r *recorder) add(d SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.tracer.opts.MaxSpans {
		r.tracer.droppedSpans.Add(1)
		return
	}
	r.spans = append(r.spans, d)
}

func (r *recorder) attachRemote(spans []SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range spans {
		if len(r.spans) >= r.tracer.opts.MaxSpans {
			r.tracer.droppedSpans.Add(1)
			return
		}
		d.Remote = true
		r.spans = append(r.spans, d)
	}
}

func (r *recorder) snapshot() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanData(nil), r.spans...)
}

func (r *recorder) publish() {
	r.tracer.store(r.traceID, r.snapshot())
}

// SlowQuery is one slow-query log entry.
type SlowQuery struct {
	// Time is when the query started.
	Time time.Time `json:"time"`
	// Site is the gateway that served it.
	Site string `json:"site,omitempty"`
	// SQL is the query text.
	SQL string `json:"sql"`
	// Mode is the execution mode.
	Mode string `json:"mode,omitempty"`
	// Elapsed is the gateway-side processing time.
	Elapsed time.Duration `json:"elapsedNs"`
	// TraceID links to the stored trace when the query was sampled.
	TraceID string `json:"traceId,omitempty"`
	// Err is the query's failure, if it failed outright.
	Err string `json:"err,omitempty"`
}

// Stats counts tracer activity.
type Stats struct {
	// Started counts sampled root spans begun.
	Started int64
	// Stored counts traces published to the store.
	Stored int64
	// Evicted counts traces evicted by the store's capacity.
	Evicted int64
	// SlowQueries counts queries recorded in the slow-query log.
	SlowQueries int64
	// DroppedSpans counts spans discarded by the per-trace cap.
	DroppedSpans int64
}

// Tracer owns the sampling decision, the bounded trace store and the
// slow-query log. A nil *Tracer is valid and never samples.
type Tracer struct {
	opts  Options
	clock func() time.Time

	seq atomic.Uint64

	mu     sync.Mutex
	traces map[string][]SpanData
	order  []string // trace IDs, oldest first

	slowMu   sync.Mutex
	slow     []SlowQuery
	slowNext int

	started, stored, evicted atomic.Int64
	slowCount, droppedSpans  atomic.Int64
}

// New creates a Tracer.
func New(o Options) *Tracer {
	if o.Capacity <= 0 {
		o.Capacity = defaultCapacity
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = defaultMaxSpans
	}
	if o.SlowLog <= 0 {
		o.SlowLog = defaultSlowLog
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = defaultSlowThreshold
	}
	if o.Sample == 0 {
		o.Sample = 1
	}
	if o.Sample < 0 {
		o.Sample = 0
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return &Tracer{opts: o, clock: o.Clock, traces: make(map[string][]SpanData)}
}

// StartTrace begins the root span of one query. An inbound remote trace
// context (ContextWithRemote) takes precedence: the new root continues the
// remote trace ID under the remote parent span, sampled per the parent
// gateway's decision. Otherwise d and the tracer's Sample rate decide. The
// returned span is nil — and every operation on it a no-op — when the query
// is not sampled.
func (t *Tracer) StartTrace(ctx context.Context, name, site string, d Decision) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	car, remote := remoteFromContext(ctx)
	var sampled bool
	switch {
	case remote:
		sampled = car.Sampled
	case d == DecideOn:
		sampled = true
	case d == DecideOff:
		sampled = false
	default:
		sampled = t.shouldSample()
	}
	if !sampled {
		return ctx, nil
	}
	t.started.Add(1)
	traceID, parent := car.TraceID, car.Parent
	if !remote {
		traceID = newID(16)
	}
	rec := &recorder{tracer: t, traceID: traceID, prefix: newID(4),
		spans: make([]SpanData, 0, 16)}
	sp := &Span{rec: rec, data: SpanData{
		TraceID: traceID,
		SpanID:  rec.nextSpanID(),
		Parent:  parent,
		Name:    name,
		Site:    site,
		Start:   t.clock(),
	}}
	rec.root = sp
	return ContextWithSpan(ctx, sp), sp
}

// shouldSample decides deterministically (a multiplicative hash over a
// sequence counter) so tests are reproducible and no lock is taken.
func (t *Tracer) shouldSample() bool {
	r := t.opts.Sample
	if r <= 0 {
		return false
	}
	if r >= 1 {
		return true
	}
	h := (t.seq.Add(1) * 2654435761) & 0xffffffff
	return float64(h) < r*float64(uint64(1)<<32)
}

// store files one trace's spans, evicting the oldest stored traces beyond
// capacity. Publishing the same trace ID again (several serving legs of one
// parent trace on the same gateway) merges instead of displacing.
func (t *Tracer) store(id string, spans []SpanData) {
	if len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.traces[id]; ok {
		t.traces[id] = append(t.traces[id], spans...)
		return
	}
	for len(t.order) >= t.opts.Capacity {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
		t.evicted.Add(1)
	}
	t.traces[id] = spans
	t.order = append(t.order, id)
	t.stored.Add(1)
}

// Node is one span with its children, for the /traces/<id> JSON tree.
type Node struct {
	SpanData
	Children []*Node `json:"children,omitempty"`
}

// TraceData is one stored trace rendered as a span tree.
type TraceData struct {
	TraceID string  `json:"traceId"`
	Spans   int     `json:"spans"`
	Roots   []*Node `json:"roots"`
}

// Trace returns one stored trace as a span tree.
func (t *Tracer) Trace(id string) (*TraceData, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	spans, ok := t.traces[id]
	if ok {
		spans = append([]SpanData(nil), spans...)
	}
	t.mu.Unlock()
	if !ok {
		return nil, false
	}
	return &TraceData{TraceID: id, Spans: len(spans), Roots: BuildTree(spans)}, true
}

// BuildTree links spans into parent/child trees ordered by start time.
// Spans whose parent is absent — the local root, or a remote fragment whose
// parent span lives on another gateway — become roots.
func BuildTree(spans []SpanData) []*Node {
	nodes := make(map[string]*Node, len(spans))
	ordered := make([]*Node, 0, len(spans))
	for i := range spans {
		n := &Node{SpanData: spans[i]}
		if _, dup := nodes[n.SpanID]; !dup {
			nodes[n.SpanID] = n
		}
		ordered = append(ordered, n)
	}
	var roots []*Node
	for _, n := range ordered {
		if p, ok := nodes[n.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range ordered {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*Node) {
	sort.SliceStable(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
}

// Summary is one stored trace's listing row (GET /traces).
type Summary struct {
	TraceID  string        `json:"traceId"`
	Name     string        `json:"name"`
	Site     string        `json:"site,omitempty"`
	SQL      string        `json:"sql,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Spans    int           `json:"spans"`
	Err      string        `json:"err,omitempty"`
}

// Traces lists stored traces, newest first.
func (t *Tracer) Traces() []Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Summary, 0, len(t.order))
	for i := len(t.order) - 1; i >= 0; i-- {
		id := t.order[i]
		spans := t.traces[id]
		s := Summary{TraceID: id, Spans: len(spans)}
		ids := make(map[string]bool, len(spans))
		for _, sd := range spans {
			ids[sd.SpanID] = true
		}
		for _, sd := range spans {
			if !sd.Remote && (sd.Parent == "" || !ids[sd.Parent]) {
				s.Name, s.Site, s.Start = sd.Name, sd.Site, sd.Start
				s.Duration, s.Err = sd.Duration, sd.Err
				s.SQL = sd.Attrs["sql"]
				break
			}
		}
		out = append(out, s)
	}
	return out
}

// ObserveQuery records q in the slow-query log when its Elapsed is at or
// above SlowThreshold. Unsampled queries are observed too (with an empty
// TraceID), so the log catches slowness the sampler missed.
func (t *Tracer) ObserveQuery(q SlowQuery) {
	if t == nil || t.opts.SlowThreshold <= 0 || q.Elapsed < t.opts.SlowThreshold {
		return
	}
	t.slowCount.Add(1)
	t.slowMu.Lock()
	if len(t.slow) < t.opts.SlowLog {
		t.slow = append(t.slow, q)
	} else {
		t.slow[t.slowNext] = q
		t.slowNext = (t.slowNext + 1) % t.opts.SlowLog
	}
	t.slowMu.Unlock()
}

// SlowQueries returns the slow-query log, newest first.
func (t *Tracer) SlowQueries() []SlowQuery {
	if t == nil {
		return nil
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	n := len(t.slow)
	out := make([]SlowQuery, 0, n)
	start := 0
	if n == t.opts.SlowLog {
		start = t.slowNext
	}
	for i := n - 1; i >= 0; i-- {
		out = append(out, t.slow[(start+i)%n])
	}
	return out
}

// SlowThreshold returns the effective slow-query threshold (0 = disabled).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil || t.opts.SlowThreshold < 0 {
		return 0
	}
	return t.opts.SlowThreshold
}

// Stats returns tracer counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:      t.started.Load(),
		Stored:       t.stored.Load(),
		Evicted:      t.evicted.Load(),
		SlowQueries:  t.slowCount.Load(),
		DroppedSpans: t.droppedSpans.Load(),
	}
}

var idFallback atomic.Uint64

// newID returns n random bytes hex-encoded; if crypto/rand fails (it cannot
// on supported platforms) a process-unique counter keeps IDs distinct.
func newID(n int) string {
	b := make([]byte, n)
	if _, err := crand.Read(b); err != nil {
		binary.BigEndian.PutUint64(b[n-8:], idFallback.Add(1))
	}
	return hex.EncodeToString(b)
}
