package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestTracer(o Options) *Tracer {
	if o.Clock == nil {
		now := time.Unix(50000, 0)
		var mu sync.Mutex
		o.Clock = func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(time.Millisecond)
			return now
		}
	}
	return New(o)
}

func TestSpanTreeRoundTrip(t *testing.T) {
	tr := newTestTracer(Options{})
	ctx, root := tr.StartTrace(context.Background(), "query", "siteA", DecideOn)
	if root == nil {
		t.Fatal("expected sampled root span")
	}
	root.SetAttr("sql", "SELECT * FROM Processor")

	cctx, child := StartSpan(ctx, "source")
	child.SetAttr("url", "gridrm:mem://a:1")
	_, grand := StartSpan(cctx, "harvest")
	grand.SetError(errors.New("boom"))
	grand.End()
	child.End()
	root.End()

	td, ok := tr.Trace(root.TraceID())
	if !ok {
		t.Fatalf("trace %q not stored", root.TraceID())
	}
	if td.Spans != 3 {
		t.Fatalf("spans = %d, want 3", td.Spans)
	}
	if len(td.Roots) != 1 || td.Roots[0].Name != "query" {
		t.Fatalf("unexpected roots: %+v", td.Roots)
	}
	r := td.Roots[0]
	if r.Site != "siteA" || r.Attrs["sql"] != "SELECT * FROM Processor" {
		t.Fatalf("root span = %+v", r.SpanData)
	}
	if len(r.Children) != 1 || r.Children[0].Name != "source" {
		t.Fatalf("root children = %+v", r.Children)
	}
	h := r.Children[0].Children
	if len(h) != 1 || h[0].Name != "harvest" || h[0].Err != "boom" {
		t.Fatalf("harvest node = %+v", h)
	}
	if r.Duration <= 0 {
		t.Fatalf("root duration = %v, want > 0", r.Duration)
	}

	sums := tr.Traces()
	if len(sums) != 1 || sums[0].TraceID != root.TraceID() || sums[0].SQL != "SELECT * FROM Processor" {
		t.Fatalf("summaries = %+v", sums)
	}
}

func TestUntracedPathIsNoop(t *testing.T) {
	tr := newTestTracer(Options{})
	ctx, root := tr.StartTrace(context.Background(), "query", "siteA", DecideOff)
	if root != nil {
		t.Fatal("DecideOff must yield a nil span")
	}
	// Everything on the nil span must be safe.
	_, child := StartSpan(ctx, "source")
	child.SetAttr("k", "v")
	child.SetError(errors.New("x"))
	child.End()
	root.SetAttr("k", "v")
	root.End()
	if root.TraceID() != "" || root.IsRoot() {
		t.Fatal("nil span must report empty identity")
	}
	AttachRemote(ctx, []SpanData{{SpanID: "x"}})
	if got := tr.Stats().Started; got != 0 {
		t.Fatalf("started = %d, want 0", got)
	}
	var nilTracer *Tracer
	if _, sp := nilTracer.StartTrace(context.Background(), "q", "s", DecideOn); sp != nil {
		t.Fatal("nil tracer must never sample")
	}
	nilTracer.ObserveQuery(SlowQuery{Elapsed: time.Hour})
}

func TestStoreFIFOEviction(t *testing.T) {
	tr := newTestTracer(Options{Capacity: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		_, sp := tr.StartTrace(context.Background(), "query", "siteA", DecideOn)
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	for _, id := range ids[:2] {
		if _, ok := tr.Trace(id); ok {
			t.Fatalf("trace %q should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := tr.Trace(id); !ok {
			t.Fatalf("trace %q should be retained", id)
		}
	}
	st := tr.Stats()
	if st.Stored != 5 || st.Evicted != 2 {
		t.Fatalf("stats = %+v, want stored=5 evicted=2", st)
	}
	if got := len(tr.Traces()); got != 3 {
		t.Fatalf("len(Traces()) = %d, want 3", got)
	}
}

func TestTracesNewestFirst(t *testing.T) {
	tr := newTestTracer(Options{})
	var ids []string
	for i := 0; i < 3; i++ {
		_, sp := tr.StartTrace(context.Background(), "query", "siteA", DecideOn)
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	sums := tr.Traces()
	if len(sums) != 3 {
		t.Fatalf("len = %d", len(sums))
	}
	for i := range sums {
		if sums[i].TraceID != ids[len(ids)-1-i] {
			t.Fatalf("order[%d] = %s, want %s", i, sums[i].TraceID, ids[len(ids)-1-i])
		}
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := newTestTracer(Options{MaxSpans: 4})
	ctx, root := tr.StartTrace(context.Background(), "query", "siteA", DecideOn)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	td, _ := tr.Trace(root.TraceID())
	if td.Spans != 4 {
		t.Fatalf("spans = %d, want 4 (capped)", td.Spans)
	}
	if tr.Stats().DroppedSpans != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Stats().DroppedSpans)
	}
}

func TestSlowLogRingEviction(t *testing.T) {
	tr := newTestTracer(Options{SlowLog: 3, SlowThreshold: 10 * time.Millisecond})
	for i := 0; i < 5; i++ {
		tr.ObserveQuery(SlowQuery{SQL: fmt.Sprintf("q%d", i), Elapsed: 20 * time.Millisecond})
	}
	tr.ObserveQuery(SlowQuery{SQL: "fast", Elapsed: 5 * time.Millisecond}) // below threshold
	got := tr.SlowQueries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if got[i].SQL != want {
			t.Fatalf("slow[%d] = %s, want %s (got %+v)", i, got[i].SQL, want, got)
		}
	}
	if tr.Stats().SlowQueries != 5 {
		t.Fatalf("slow count = %d, want 5", tr.Stats().SlowQueries)
	}
}

func TestSlowLogDisabled(t *testing.T) {
	tr := newTestTracer(Options{SlowThreshold: -1})
	tr.ObserveQuery(SlowQuery{SQL: "q", Elapsed: time.Hour})
	if got := tr.SlowQueries(); len(got) != 0 {
		t.Fatalf("disabled slowlog recorded %+v", got)
	}
	if tr.SlowThreshold() != 0 {
		t.Fatalf("SlowThreshold() = %v, want 0", tr.SlowThreshold())
	}
}

func TestSamplingRates(t *testing.T) {
	const n = 1000
	count := func(rate float64) int {
		tr := newTestTracer(Options{Sample: rate})
		hits := 0
		for i := 0; i < n; i++ {
			if _, sp := tr.StartTrace(context.Background(), "q", "s", DecideSample); sp != nil {
				hits++
				sp.End()
			}
		}
		return hits
	}
	if got := count(-1); got != 0 {
		t.Fatalf("rate -1 sampled %d, want 0", got)
	}
	if got := count(1); got != n {
		t.Fatalf("rate 1 sampled %d, want %d", got, n)
	}
	if got := count(0.5); got < n/4 || got > 3*n/4 {
		t.Fatalf("rate 0.5 sampled %d of %d, want roughly half", got, n)
	}
	// DecideOn overrides a zero rate.
	tr := newTestTracer(Options{Sample: -1})
	if _, sp := tr.StartTrace(context.Background(), "q", "s", DecideOn); sp == nil {
		t.Fatal("DecideOn must sample even at rate 0")
	}
}

func TestCarrierRoundTrip(t *testing.T) {
	tr := newTestTracer(Options{})
	ctx, sp := tr.StartTrace(context.Background(), "query", "siteA", DecideOn)
	car, ok := CarrierFromContext(ctx)
	if !ok || car.TraceID != sp.TraceID() || car.Parent != sp.SpanID() || !car.Sampled {
		t.Fatalf("carrier = %+v ok=%v", car, ok)
	}
	parsed, ok := ParseCarrier(car.Header())
	if !ok || parsed != car {
		t.Fatalf("ParseCarrier(%q) = %+v ok=%v", car.Header(), parsed, ok)
	}
	for _, bad := range []string{"", "abc", "a-b", "a-b-c-d", "-b-1", "a--1", "a-b-x"} {
		if _, ok := ParseCarrier(bad); ok {
			t.Fatalf("ParseCarrier(%q) accepted malformed value", bad)
		}
	}
	if _, ok := CarrierFromContext(context.Background()); ok {
		t.Fatal("untraced context must not produce a carrier")
	}
}

func TestRemoteContinuation(t *testing.T) {
	parent := newTestTracer(Options{})
	pctx, proot := parent.StartTrace(context.Background(), "query", "siteA", DecideOn)
	car, _ := CarrierFromContext(pctx)

	// The remote gateway continues the trace even with sampling disabled
	// locally, because the carrier says sampled.
	remote := newTestTracer(Options{Sample: -1})
	rctx := ContextWithRemote(context.Background(), car)
	_, rroot := remote.StartTrace(rctx, "query", "siteB", DecideSample)
	if rroot == nil {
		t.Fatal("remote gateway must honour the carrier's sampling decision")
	}
	if rroot.TraceID() != proot.TraceID() {
		t.Fatalf("remote trace ID %q, want %q", rroot.TraceID(), proot.TraceID())
	}
	_, child := StartSpan(ContextWithSpan(rctx, rroot), "harvest")
	child.End()
	rroot.End()

	// Stitch the remote spans under the parent and check the merged tree.
	AttachRemote(pctx, rroot.Collected())
	proot.End()
	td, ok := parent.Trace(proot.TraceID())
	if !ok {
		t.Fatal("parent trace not stored")
	}
	if td.Spans != 3 {
		t.Fatalf("stitched spans = %d, want 3", td.Spans)
	}
	if len(td.Roots) != 1 {
		t.Fatalf("stitched roots = %+v, want the parent root only", td.Roots)
	}
	var remoteNode *Node
	for _, c := range td.Roots[0].Children {
		if c.Site == "siteB" {
			remoteNode = c
		}
	}
	if remoteNode == nil || !remoteNode.Remote {
		t.Fatalf("remote root not stitched under parent: %+v", td.Roots[0].Children)
	}
	if len(remoteNode.Children) != 1 || remoteNode.Children[0].Name != "harvest" {
		t.Fatalf("remote children = %+v", remoteNode.Children)
	}

	// An unsampled carrier must suppress remote tracing.
	rctx = ContextWithRemote(context.Background(), Carrier{TraceID: "t", Parent: "p", Sampled: false})
	if _, sp := remote.StartTrace(rctx, "query", "siteB", DecideOn); sp != nil {
		t.Fatal("unsampled carrier must win over DecideOn")
	}
}

func TestStoreMergesSameTraceID(t *testing.T) {
	tr := newTestTracer(Options{})
	car := Carrier{TraceID: "shared", Parent: "p1", Sampled: true}
	for i := 0; i < 2; i++ {
		ctx := ContextWithRemote(context.Background(), car)
		_, sp := tr.StartTrace(ctx, "query", "siteB", DecideSample)
		sp.End()
	}
	td, ok := tr.Trace("shared")
	if !ok || td.Spans != 2 {
		t.Fatalf("merged trace = %+v ok=%v, want 2 spans", td, ok)
	}
	if tr.Stats().Stored != 1 {
		t.Fatalf("stored = %d, want 1 (merge, not new entry)", tr.Stats().Stored)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := newTestTracer(Options{})
	_, sp := tr.StartTrace(context.Background(), "query", "siteA", DecideOn)
	sp.End()
	sp.End()
	td, _ := tr.Trace(sp.TraceID())
	if td.Spans != 1 {
		t.Fatalf("double End recorded %d spans, want 1", td.Spans)
	}
	sp.SetAttr("late", "x")
	if td2, _ := tr.Trace(sp.TraceID()); td2.Roots[0].Attrs["late"] != "" {
		t.Fatal("attr set after End must not leak into the stored span")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := newTestTracer(Options{Clock: time.Now})
	ctx, root := tr.StartTrace(context.Background(), "query", "siteA", DecideOn)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, sp := StartSpan(ctx, "source")
			sp.SetAttr("i", fmt.Sprint(i))
			_, h := StartSpan(sctx, "harvest")
			h.End()
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	td, _ := tr.Trace(root.TraceID())
	if td.Spans != 33 {
		t.Fatalf("spans = %d, want 33", td.Spans)
	}
}

func TestBuildTreeOrphanBecomesRoot(t *testing.T) {
	roots := BuildTree([]SpanData{
		{SpanID: "a", Parent: "missing", Name: "orphan", Start: time.Unix(2, 0)},
		{SpanID: "b", Name: "root", Start: time.Unix(1, 0)},
	})
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	if roots[0].Name != "root" || roots[1].Name != "orphan" {
		t.Fatalf("roots misordered: %s, %s", roots[0].Name, roots[1].Name)
	}
}
