package qcache

import (
	"fmt"
	"testing"
	"time"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

func sampleRS(t *testing.T, host string) *resultset.ResultSet {
	t.Helper()
	meta, err := resultset.NewMetadata([]resultset.Column{
		{Name: "HostName", Kind: glue.String},
		{Name: "Load", Kind: glue.Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := resultset.NewBuilder(meta).Append(host, 1.0).Build()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func newCache(ttl time.Duration, maxEntries int) (*Cache, *time.Time) {
	now := time.Unix(0, 0)
	c := New(Options{TTL: ttl, MaxEntries: maxEntries, Clock: func() time.Time { return now }})
	return c, &now
}

const src = "gridrm:snmp://h:1"
const sql = "SELECT * FROM Processor"

func TestPutGet(t *testing.T) {
	c, _ := newCache(time.Second, 0)
	if _, _, ok := c.Get(src, sql); ok {
		t.Error("empty cache hit")
	}
	c.Put(src, sql, sampleRS(t, "h"))
	rs, at, ok := c.Get(src, sql)
	if !ok {
		t.Fatal("miss after put")
	}
	if at.IsZero() || rs.Len() != 1 {
		t.Errorf("cached at %v, %d rows", at, rs.Len())
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestGetReturnsIndependentCursors(t *testing.T) {
	c, _ := newCache(time.Second, 0)
	c.Put(src, sql, sampleRS(t, "h"))
	a, _, _ := c.Get(src, sql)
	b, _, _ := c.Get(src, sql)
	a.Next()
	if _, err := b.Row(); err == nil {
		t.Error("cursor state shared between cached reads")
	}
}

func TestTTLExpiry(t *testing.T) {
	c, now := newCache(2*time.Second, 0)
	c.Put(src, sql, sampleRS(t, "h"))
	*now = now.Add(time.Second)
	if _, _, ok := c.Get(src, sql); !ok {
		t.Error("fresh entry missed")
	}
	*now = now.Add(2 * time.Second)
	if _, _, ok := c.Get(src, sql); ok {
		t.Error("expired entry hit")
	}
	if c.Stats().Stale != 1 {
		t.Errorf("stale = %d", c.Stats().Stale)
	}
	if c.Len() != 0 {
		t.Error("expired entry retained")
	}
}

func TestKeyIncludesSQLAndSource(t *testing.T) {
	c, _ := newCache(time.Second, 0)
	c.Put(src, sql, sampleRS(t, "h"))
	if _, _, ok := c.Get(src, "SELECT * FROM Memory"); ok {
		t.Error("different SQL hit")
	}
	if _, _, ok := c.Get("gridrm:snmp://other:1", sql); ok {
		t.Error("different source hit")
	}
}

func TestInvalidateSource(t *testing.T) {
	c, _ := newCache(time.Second, 0)
	c.Put(src, sql, sampleRS(t, "h"))
	c.Put(src, "SELECT * FROM Memory", sampleRS(t, "h"))
	c.Put("gridrm:snmp://other:1", sql, sampleRS(t, "o"))
	if n := c.InvalidateSource(src); n != 2 {
		t.Errorf("invalidated %d, want 2", n)
	}
	if _, _, ok := c.Get("gridrm:snmp://other:1", sql); !ok {
		t.Error("unrelated source invalidated")
	}
}

func TestMaxEntriesEvictsOldest(t *testing.T) {
	c, now := newCache(time.Hour, 3)
	for i := 0; i < 4; i++ {
		*now = now.Add(time.Second)
		c.Put(fmt.Sprintf("gridrm:x://h%d:1", i), sql, sampleRS(t, "h"))
	}
	if c.Len() != 3 {
		t.Errorf("len = %d", c.Len())
	}
	if _, _, ok := c.Get("gridrm:x://h0:1", sql); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, _, ok := c.Get("gridrm:x://h3:1", sql); !ok {
		t.Error("newest entry evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestEntriesListing(t *testing.T) {
	c, now := newCache(10*time.Second, 0)
	c.Put(src, sql, sampleRS(t, "h"))
	*now = now.Add(time.Second)
	c.Put(src, "SELECT * FROM Memory", sampleRS(t, "h"))
	entries := c.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Newest first.
	if entries[0].SQL != "SELECT * FROM Memory" {
		t.Errorf("order: %v", entries)
	}
	if entries[1].Age != time.Second {
		t.Errorf("age = %v", entries[1].Age)
	}
	if entries[0].Rows != 1 || entries[0].Source != src {
		t.Errorf("entry %+v", entries[0])
	}
	// Expired entries are omitted from the tree view.
	*now = now.Add(time.Minute)
	if got := c.Entries(); len(got) != 0 {
		t.Errorf("expired entries listed: %v", got)
	}
}

func TestClear(t *testing.T) {
	c, _ := newCache(time.Second, 0)
	c.Put(src, sql, sampleRS(t, "h"))
	c.Clear()
	if c.Len() != 0 {
		t.Error("Clear left entries")
	}
}

func TestDefaultsAndTTLAccessor(t *testing.T) {
	c := New(Options{})
	if c.TTL() != 2*time.Second {
		t.Errorf("default TTL = %v", c.TTL())
	}
}

// Expiry-vs-capacity eviction table: expired entries must be purged before
// any fresh entry is forced out, and overwriting an existing key must never
// evict (the map does not grow).
func TestPutPurgesExpiredBeforeEvicting(t *testing.T) {
	tests := []struct {
		name      string
		expired   int // entries aged past TTL before the cache fills
		fresh     int // entries still within TTL
		max       int
		wantGone  []string // keys expected missing after one more Put
		wantAlive []string // keys expected still fresh
	}{
		{name: "expired garbage purged, fresh survive", expired: 2, fresh: 1, max: 3,
			wantGone: []string{"exp0", "exp1"}, wantAlive: []string{"fresh0"}},
		{name: "all expired", expired: 3, fresh: 0, max: 3,
			wantGone: []string{"exp0", "exp1", "exp2"}},
		{name: "no expired falls back to oldest eviction", expired: 0, fresh: 3, max: 3,
			wantGone: []string{"fresh0"}, wantAlive: []string{"fresh1", "fresh2"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c, now := newCache(10*time.Second, tc.max)
			for i := 0; i < tc.expired; i++ {
				c.Put(fmt.Sprintf("exp%d", i), sql, sampleRS(t, "h"))
			}
			*now = now.Add(11 * time.Second) // age the first batch past TTL
			for i := 0; i < tc.fresh; i++ {
				c.Put(fmt.Sprintf("fresh%d", i), sql, sampleRS(t, "h"))
				*now = now.Add(time.Millisecond) // distinct ages for oldest-eviction
			}
			c.Put("newcomer", sql, sampleRS(t, "h"))
			if _, _, ok := c.Get("newcomer", sql); !ok {
				t.Error("newcomer not cached")
			}
			for _, k := range tc.wantGone {
				if _, _, ok := c.Get(k, sql); ok {
					t.Errorf("%s still cached, want gone", k)
				}
			}
			for _, k := range tc.wantAlive {
				if _, _, ok := c.Get(k, sql); !ok {
					t.Errorf("%s evicted, want alive", k)
				}
			}
			if c.Len() > tc.max {
				t.Errorf("len = %d > max %d", c.Len(), tc.max)
			}
		})
	}
}

func TestPutOverwriteDoesNotEvict(t *testing.T) {
	c, _ := newCache(10*time.Second, 2)
	c.Put("a", sql, sampleRS(t, "h"))
	c.Put("b", sql, sampleRS(t, "h"))
	// At capacity: overwriting "a" must not evict anything.
	c.Put("a", sql, sampleRS(t, "h2"))
	if _, _, ok := c.Get("a", sql); !ok {
		t.Error("overwritten key missing")
	}
	if _, _, ok := c.Get("b", sql); !ok {
		t.Error("sibling evicted by an overwrite")
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Errorf("evictions = %d, want 0", ev)
	}
}

// TestConcurrentGetPutClear exercises the Get/Put/Clear interleavings under
// -race: the entry read and clone must happen under the lock.
func TestConcurrentGetPutClear(t *testing.T) {
	c := New(Options{TTL: time.Second, MaxEntries: 8})
	rs := sampleRS(t, "h")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			c.Put(src, sql, rs)
			if i%100 == 0 {
				c.Clear()
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		if got, _, ok := c.Get(src, sql); ok && got.Len() != 1 {
			t.Fatalf("torn read: %d rows", got.Len())
		}
	}
	<-done
}

func BenchmarkGetHit(b *testing.B) {
	c := New(Options{TTL: time.Hour})
	meta, _ := resultset.NewMetadata([]resultset.Column{{Name: "HostName", Kind: glue.String}})
	rs, _ := resultset.NewBuilder(meta).Append("h").Build()
	c.Put(src, sql, rs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Get(src, sql); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkPutAtCapacity measures Put when the cache is full of expired
// garbage — the case the expiry purge exists for.
func BenchmarkPutAtCapacity(b *testing.B) {
	now := time.Unix(0, 0)
	c := New(Options{TTL: time.Second, MaxEntries: 256, Clock: func() time.Time { return now }})
	meta, _ := resultset.NewMetadata([]resultset.Column{{Name: "HostName", Kind: glue.String}})
	rs, _ := resultset.NewBuilder(meta).Append("h").Build()
	for i := 0; i < 256; i++ {
		c.Put(fmt.Sprintf("src%d", i), sql, rs)
	}
	now = now.Add(2 * time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(fmt.Sprintf("live%d", i%512), sql, rs)
	}
}
