// Package qcache implements the gateway's query-result cache (paper §4,
// Fig 9): "by utilising the cache, a heavily used GridRM Gateway can return
// a view of the recent status of a site while limiting resource intrusion".
//
// Entries are keyed by (data-source URL, canonical SQL) and expire after a
// TTL. The cached tree view in the paper's JSP interface is the Entries
// listing; real-time polls bypass or refresh the cache.
package qcache

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/resultset"
)

// Options configures a Cache.
type Options struct {
	// TTL is how long entries stay fresh (default 2s, the recent-status
	// window).
	TTL time.Duration
	// MaxEntries bounds the cache; zero means 4096. Oldest entries are
	// evicted first.
	MaxEntries int
	// StaleGrace keeps entries past their TTL for this additional window
	// instead of purging them, so the gateway can serve stale-but-recent
	// data when a source fails (GetStale). Zero disables the grace window
	// and preserves the strict purge-at-TTL behaviour.
	StaleGrace time.Duration
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
}

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Stale     int64
	Evictions int64
	// GraceHits counts GetStale calls satisfied by an entry (fresh or
	// expired-within-grace).
	GraceHits int64
}

// Entry describes one cached result for the tree view.
type Entry struct {
	// Source is the data-source URL.
	Source string
	// SQL is the canonical query text.
	SQL string
	// Rows is the cached row count.
	Rows int
	// CachedAt is when the result was stored.
	CachedAt time.Time
	// Age is how old the entry was at listing time.
	Age time.Duration
}

// Cache is a TTL query-result cache.
type Cache struct {
	opts Options

	mu      sync.Mutex
	entries map[string]*cached

	hits, misses, stale, evictions, graceHits atomic.Int64
}

type cached struct {
	source   string
	sql      string
	rs       *resultset.ResultSet
	cachedAt time.Time
}

// New creates a Cache.
func New(opts Options) *Cache {
	if opts.TTL <= 0 {
		opts.TTL = 2 * time.Second
	}
	if opts.StaleGrace < 0 {
		opts.StaleGrace = 0
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 4096
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Cache{opts: opts, entries: make(map[string]*cached)}
}

func cacheKey(source, sql string) string { return source + "\x00" + sql }

// Get returns a cached result (as an independent-cursor clone) and when it
// was harvested, if present and fresh.
func (c *Cache) Get(source, sql string) (*resultset.ResultSet, time.Time, bool) {
	now := c.opts.Clock()
	c.mu.Lock()
	e, ok := c.entries[cacheKey(source, sql)]
	if ok && now.Sub(e.cachedAt) > c.opts.TTL {
		// Expired: a miss for freshness purposes, but the entry is kept
		// for GetStale until it ages past TTL+StaleGrace.
		if now.Sub(e.cachedAt) > c.opts.TTL+c.opts.StaleGrace {
			delete(c.entries, cacheKey(source, sql))
		}
		c.mu.Unlock()
		c.stale.Add(1)
		c.misses.Add(1)
		return nil, time.Time{}, false
	}
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, time.Time{}, false
	}
	// Read and clone the entry under the lock: a concurrent Put may
	// replace it and a concurrent Clear drops the map it lives in.
	rs, at := e.rs.Clone(), e.cachedAt
	c.mu.Unlock()
	c.hits.Add(1)
	return rs, at, true
}

// Put stores a result. Overwriting an existing key never evicts (the map
// does not grow); at capacity, expired entries are purged before a fresh
// oldest entry is considered for eviction.
func (c *Cache) Put(source, sql string, rs *resultset.ResultSet) {
	now := c.opts.Clock()
	k := cacheKey(source, sql)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[k]; !exists && len(c.entries) >= c.opts.MaxEntries {
		c.purgeExpiredLocked(now)
		if len(c.entries) >= c.opts.MaxEntries {
			c.evictOldestLocked()
		}
	}
	c.entries[k] = &cached{source: source, sql: sql, rs: rs.Clone(), cachedAt: now}
}

// GetStale returns a cached result regardless of TTL expiry, provided the
// entry is still within the TTL+StaleGrace retention horizon. It backs the
// gateway's serve-stale-on-failure degradation tier and never competes with
// Get for the hit/miss counters.
func (c *Cache) GetStale(source, sql string) (*resultset.ResultSet, time.Time, bool) {
	now := c.opts.Clock()
	c.mu.Lock()
	e, ok := c.entries[cacheKey(source, sql)]
	if !ok || now.Sub(e.cachedAt) > c.opts.TTL+c.opts.StaleGrace {
		c.mu.Unlock()
		return nil, time.Time{}, false
	}
	rs, at := e.rs.Clone(), e.cachedAt
	c.mu.Unlock()
	c.graceHits.Add(1)
	return rs, at, true
}

// purgeExpiredLocked drops every entry past its retention horizon
// (TTL+StaleGrace), so dead entries never force a fresh one out at
// capacity. With no grace window this is the strict purge-at-TTL of the
// paper's recent-status cache.
func (c *Cache) purgeExpiredLocked(now time.Time) {
	for k, e := range c.entries {
		if now.Sub(e.cachedAt) > c.opts.TTL+c.opts.StaleGrace {
			delete(c.entries, k)
			c.stale.Add(1)
		}
	}
}

func (c *Cache) evictOldestLocked() {
	var oldestKey string
	var oldest time.Time
	first := true
	for k, e := range c.entries {
		if first || e.cachedAt.Before(oldest) {
			oldestKey, oldest, first = k, e.cachedAt, false
		}
	}
	if oldestKey != "" {
		delete(c.entries, oldestKey)
		c.evictions.Add(1)
	}
}

// InvalidateSource drops all entries for one data source (used when a
// real-time poll refreshes a source, or a source is removed).
func (c *Cache) InvalidateSource(source string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, e := range c.entries {
		if e.source == source {
			delete(c.entries, k)
			n++
		}
	}
	return n
}

// Clear drops everything.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cached)
}

// Len returns the number of cached entries (fresh or not yet collected).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Entries lists cached results for the tree view, newest first. Expired
// entries are omitted.
func (c *Cache) Entries() []Entry {
	now := c.opts.Clock()
	c.mu.Lock()
	out := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		age := now.Sub(e.cachedAt)
		if age > c.opts.TTL {
			continue
		}
		out = append(out, Entry{Source: e.source, SQL: e.sql, Rows: e.rs.Len(), CachedAt: e.cachedAt, Age: age})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CachedAt.Equal(out[j].CachedAt) {
			return out[i].CachedAt.After(out[j].CachedAt)
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].SQL < out[j].SQL
	})
	return out
}

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stale:     c.stale.Load(),
		Evictions: c.evictions.Load(),
		GraceHits: c.graceHits.Load(),
	}
}

// TTL returns the configured freshness window.
func (c *Cache) TTL() time.Duration { return c.opts.TTL }

// StaleGrace returns the configured serve-stale grace window.
func (c *Cache) StaleGrace() time.Duration { return c.opts.StaleGrace }
