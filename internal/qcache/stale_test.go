package qcache

import (
	"testing"
	"time"
)

func newGraceCache(ttl, grace time.Duration) (*Cache, *time.Time) {
	now := time.Unix(0, 0)
	c := New(Options{TTL: ttl, StaleGrace: grace, Clock: func() time.Time { return now }})
	return c, &now
}

func TestGetStaleServesExpiredWithinGrace(t *testing.T) {
	c, now := newGraceCache(time.Second, time.Minute)
	c.Put(src, sql, sampleRS(t, "h"))

	// Fresh entries are also visible through GetStale.
	if _, _, ok := c.GetStale(src, sql); !ok {
		t.Fatal("GetStale missed a fresh entry")
	}

	// Past TTL but within grace: Get misses, GetStale serves.
	*now = now.Add(2 * time.Second)
	if _, _, ok := c.Get(src, sql); ok {
		t.Fatal("Get served an expired entry")
	}
	rs, at, ok := c.GetStale(src, sql)
	if !ok {
		t.Fatal("GetStale missed an entry within the grace window")
	}
	if rs.Len() != 1 || !at.Equal(time.Unix(0, 0)) {
		t.Errorf("stale serve rows=%d at=%v", rs.Len(), at)
	}
	if hits := c.Stats().GraceHits; hits < 1 {
		t.Errorf("GraceHits = %d, want >= 1", hits)
	}

	// Beyond TTL+grace the entry is gone for both paths.
	*now = now.Add(2 * time.Minute)
	if _, _, ok := c.GetStale(src, sql); ok {
		t.Error("GetStale served an entry beyond the grace window")
	}
}

func TestGetStaleReturnsIndependentCursor(t *testing.T) {
	c, now := newGraceCache(time.Second, time.Minute)
	c.Put(src, sql, sampleRS(t, "h"))
	*now = now.Add(2 * time.Second)
	a, _, _ := c.GetStale(src, sql)
	b, _, _ := c.GetStale(src, sql)
	a.Next()
	if !b.Next() {
		t.Fatal("second cursor exhausted by the first")
	}
}

func TestZeroGracePreservesExpiry(t *testing.T) {
	c, now := newGraceCache(time.Second, 0)
	c.Put(src, sql, sampleRS(t, "h"))
	*now = now.Add(2 * time.Second)
	if _, _, ok := c.Get(src, sql); ok {
		t.Error("expired entry served with no grace configured")
	}
	if _, _, ok := c.GetStale(src, sql); ok {
		t.Error("GetStale served past TTL with zero grace")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry retained: len=%d", c.Len())
	}
}

func TestGraceKeepsEntryAcrossGetMiss(t *testing.T) {
	// A Get miss inside the grace window must not delete the entry — the
	// degraded path needs it moments later.
	c, now := newGraceCache(time.Second, time.Minute)
	c.Put(src, sql, sampleRS(t, "h"))
	*now = now.Add(2 * time.Second)
	if _, _, ok := c.Get(src, sql); ok {
		t.Fatal("expired entry served fresh")
	}
	if _, _, ok := c.GetStale(src, sql); !ok {
		t.Error("Get miss evicted an entry still inside the grace window")
	}
}
