package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/drivers/memdrv"
	"gridrm/internal/pool"
	"gridrm/internal/qcache"
)

func init() {
	register(Experiment{
		ID:     "e6",
		Anchor: "§4 / Fig 9: the cached tree view limits resource intrusion",
		Claim: "with the query cache on, a heavily used gateway answers many clients " +
			"while the number of native requests reaching the agents stays nearly flat; " +
			"with the cache off, intrusion grows linearly with client load",
		Run: runE6,
	})
}

func runE6(w io.Writer, quick bool) error {
	clients := pick(quick, []int{1, 16}, []int{1, 8, 32, 128})
	queriesPerClient := 20
	if quick {
		queriesPerClient = 5
	}
	agentDelay := 300 * time.Microsecond

	run := func(cached bool, nClients int) (time.Duration, int64, core.Stats, error) {
		backend := memdrv.NewBackend([]string{"h1", "h2", "h3", "h4"})
		backend.SetQueryDelay(agentDelay)
		gw := core.New(core.Config{
			Name:  "e6",
			Cache: qcache.Options{TTL: time.Hour}, // never stale within the run
			Pool:  pool.Options{MaxIdlePerSource: nClients},
		})
		defer gw.Close()
		d := memdrv.New("jdbc-mem", "mem", backend)
		if err := gw.RegisterDriver(d, d.Schema()); err != nil {
			return 0, 0, core.Stats{}, err
		}
		url := "gridrm:mem://agent:1"
		if err := gw.AddSource(core.SourceConfig{URL: url}); err != nil {
			return 0, 0, core.Stats{}, err
		}
		mode := core.ModeRealTime
		if cached {
			mode = core.ModeCached
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, nClients)
		for c := 0; c < nClients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := 0; q < queriesPerClient; q++ {
					_, err := gw.QueryContext(context.Background(), core.QueryOptions{
						Principal: benchPrincipal,
						SQL:       "SELECT * FROM Processor WHERE LoadLast1Min >= 0",
						Mode:      mode,
					})
					if err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, 0, core.Stats{}, err
		}
		elapsed := time.Since(start)
		return elapsed, backend.Queries(), gw.Stats(), nil
	}

	t := newTable(w, "clients", "mode", "queries", "elapsed", "gateway q/s", "agent requests", "intrusion/query")
	for _, n := range clients {
		for _, cached := range []bool{false, true} {
			elapsed, agentReqs, st, err := run(cached, n)
			if err != nil {
				return err
			}
			total := st.Queries
			mode := "real-time"
			if cached {
				mode = "cached"
			}
			t.row(n, mode, total, elapsed.Round(time.Millisecond),
				fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
				agentReqs, fmt.Sprintf("%.3f", float64(agentReqs)/float64(total)))
		}
	}
	t.flush()
	fmt.Fprintf(w, "\nnote: 'agent requests' is how many queries actually reached the (rate-limited)\n"+
		"native agent — the paper's \"resource intrusion\". Cached mode pins it near 1.\n")
	return nil
}
