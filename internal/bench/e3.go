package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/drivers/memdrv"
	"gridrm/internal/pool"
)

func init() {
	register(Experiment{
		ID:     "e3",
		Anchor: "§3.1.2: the ConnectionManager pools driver connections",
		Claim: "driver connections incur an overhead when a data source is first " +
			"connected, so pooling wins whenever connect cost is non-trivial, and the " +
			"hit ratio stays high under concurrency",
		Run: runE3,
	})
}

func runE3(w io.Writer, quick bool) error {
	concurrencies := pick(quick, []int{1, 8}, []int{1, 4, 16, 64})
	perWorker := 50
	if quick {
		perWorker = 10
	}
	connectCost := 500 * time.Microsecond

	run := func(disabled bool, workers int) (time.Duration, pool.Stats, error) {
		backend := memdrv.NewBackend([]string{"h1", "h2"})
		backend.SetConnectDelay(connectCost)
		dm := driver.NewManager()
		if err := dm.RegisterDriver(memdrv.New("jdbc-mem", "mem", backend)); err != nil {
			return 0, pool.Stats{}, err
		}
		cm := pool.New(dm, pool.Options{Disabled: disabled, MaxIdlePerSource: workers})
		url := "gridrm:mem://agent:1"
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < perWorker; j++ {
					conn, err := cm.Get(url, nil)
					if err != nil {
						errs <- err
						return
					}
					stmt, err := conn.CreateStatement()
					if err != nil {
						conn.Discard()
						errs <- err
						return
					}
					if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
						conn.Discard()
						errs <- err
						return
					}
					conn.Release()
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, pool.Stats{}, err
		}
		total := time.Since(start)
		perQuery := total / time.Duration(workers*perWorker)
		return perQuery, cm.Stats(), nil
	}

	t := newTable(w, "concurrency", "pooled/query", "unpooled/query", "speedup", "pool hit ratio", "opens pooled", "opens unpooled")
	for _, c := range concurrencies {
		pooled, ps, err := run(false, c)
		if err != nil {
			return err
		}
		unpooled, us, err := run(true, c)
		if err != nil {
			return err
		}
		hitRatio := float64(ps.Hits) / float64(ps.Hits+ps.Misses)
		t.row(c, pooled, unpooled,
			fmt.Sprintf("%.1fx", float64(unpooled)/float64(pooled)),
			fmt.Sprintf("%.2f", hitRatio), ps.Opens, us.Opens)
	}
	t.flush()

	// Idle reaping keeps the pool bounded.
	backend := memdrv.NewBackend([]string{"h1"})
	dm := driver.NewManager()
	_ = dm.RegisterDriver(memdrv.New("jdbc-mem", "mem", backend))
	now := time.Unix(0, 0)
	cm := pool.New(dm, pool.Options{MaxIdleTime: time.Minute, Clock: func() time.Time { return now }})
	for i := 0; i < 4; i++ {
		conn, err := cm.Get(fmt.Sprintf("gridrm:mem://agent%d:1", i), nil)
		if err != nil {
			return err
		}
		conn.Release()
	}
	now = now.Add(2 * time.Minute)
	reaped := cm.Reap()
	fmt.Fprintf(w, "\nidle reaping: %d idle connections evicted after MaxIdleTime (pool now %d)\n",
		reaped, cm.IdleCount())
	return nil
}
