package bench

import (
	"fmt"
	"io"

	"gridrm/internal/driver"
	"gridrm/internal/drivers/gangliadrv"
	"gridrm/internal/drivers/netloggerdrv"
	"gridrm/internal/drivers/nwsdrv"
	"gridrm/internal/drivers/scmsdrv"
	"gridrm/internal/drivers/snmpdrv"
	"gridrm/internal/schema"
	"gridrm/internal/sitekit"
)

func init() {
	register(Experiment{
		ID:     "e4",
		Anchor: "§3.2.3: experiences with a range of GridRM drivers",
		Claim: "SNMP/NetLogger support fine-grained native requests with little parsing; " +
			"Ganglia/NWS responses are coarse-grained and parse-heavy, so per-plug-in " +
			"caching slashes their cost; native requests per query show the granularity gap",
		Run: runE4,
	})
}

func runE4(w io.Writer, quick bool) error {
	iters := 30
	if quick {
		iters = 8
	}
	site, err := sitekit.Start(sitekit.Options{Name: "e4", Hosts: 6, Seed: 44})
	if err != nil {
		return err
	}
	defer site.Close()
	m := site.Manifest()

	sm := schema.NewManager()
	for _, ds := range []*schema.DriverSchema{
		snmpdrv.Schema(), gangliadrv.Schema(), nwsdrv.Schema(),
		netloggerdrv.Schema(), scmsdrv.Schema(),
	} {
		if err := sm.Register(ds); err != nil {
			return err
		}
	}

	type probe struct {
		label    string
		drv      driver.Driver
		url      string
		props    driver.Properties
		requests func() int64
		style    string
		sql      string
	}
	const procSQL = "SELECT * FROM Processor"
	probes := []probe{
		{"jdbc-snmp (scalar group)", snmpdrv.New(sm), "gridrm:snmp://" + m.SNMP[0], nil,
			site.SNMP[0].Requests, "fine", procSQL},
		{"jdbc-snmp (table walk)", snmpdrv.New(sm), "gridrm:snmp://" + m.SNMP[0], nil,
			site.SNMP[0].Requests, "fine", "SELECT * FROM Process"},
		{"jdbc-netlogger", netloggerdrv.New(sm), "gridrm:netlogger://" + m.NetLogger, nil,
			site.NL.Requests, "fine", procSQL},
		{"jdbc-scms", scmsdrv.New(sm), "gridrm:scms://" + m.SCMS, nil,
			site.SCMS.Requests, "coarse-line", procSQL},
		{"jdbc-ganglia (no cache)", gangliadrv.New(sm), "gridrm:ganglia://" + m.Ganglia,
			driver.Properties{"cache_ttl": "0s"}, site.Gmon.Requests, "coarse-xml", procSQL},
		{"jdbc-ganglia (1s cache)", gangliadrv.New(sm), "gridrm:ganglia://" + m.Ganglia,
			driver.Properties{"cache_ttl": "1h"}, site.Gmon.Requests, "coarse-xml", procSQL},
		{"jdbc-nws (no cache)", nwsdrv.New(sm), "gridrm:nws://" + m.NWS,
			driver.Properties{"cache_ttl": "0s"}, site.NWS.Requests, "coarse-text", procSQL},
		{"jdbc-nws (1s cache)", nwsdrv.New(sm), "gridrm:nws://" + m.NWS,
			driver.Properties{"cache_ttl": "1h"}, site.NWS.Requests, "coarse-text", procSQL},
	}

	t := newTable(w, "driver", "style", "latency/query", "native reqs/query", "rows")
	for _, p := range probes {
		conn, err := p.drv.Connect(p.url, p.props)
		if err != nil {
			return fmt.Errorf("%s: %w", p.label, err)
		}
		stmt, err := conn.CreateStatement()
		if err != nil {
			_ = conn.Close()
			return err
		}
		// Warm-up (fills plug-in caches where configured).
		rs, err := stmt.ExecuteQuery(p.sql)
		if err != nil {
			_ = conn.Close()
			return fmt.Errorf("%s: %w", p.label, err)
		}
		before := p.requests()
		mean, err := timeIt(iters, func() error {
			_, err := stmt.ExecuteQuery(p.sql)
			return err
		})
		if err != nil {
			_ = conn.Close()
			return err
		}
		perQuery := float64(p.requests()-before) / float64(iters)
		t.row(p.label, p.style, mean, fmt.Sprintf("%.1f", perQuery), rs.Len())
		_ = stmt.Close()
		_ = conn.Close()
	}
	t.flush()
	fmt.Fprintf(w, "\nnote: 'native reqs/query' counts protocol commands the agent served — the\n"+
		"per-OID round trips of SNMP versus one whole-cluster dump for Ganglia.\n")
	return nil
}
