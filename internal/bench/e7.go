package bench

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/drivers/memdrv"
	"gridrm/internal/gma"
	"gridrm/internal/web"
)

func init() {
	register(Experiment{
		ID:     "e7",
		Anchor: "Fig 1: Global and Local layers over the GMA",
		Claim: "clients connect to any gateway; remote-site queries route through the " +
			"GMA directory to the owning gateway with one extra HTTP hop, and routing " +
			"cost stays flat as the federation grows",
		Run: runE7,
	})
}

type fedSite struct {
	gw  *core.Gateway
	srv *httptest.Server
}

func buildFederation(n int) (*gma.Directory, []*fedSite, error) {
	dir := gma.NewDirectory(0, nil)
	sites := make([]*fedSite, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("site%02d", i)
		gw := core.New(core.Config{Name: name})
		backend := memdrv.NewBackend([]string{name + "-n1", name + "-n2"})
		d := memdrv.New("jdbc-mem", "mem", backend)
		if err := gw.RegisterDriver(d, d.Schema()); err != nil {
			return nil, nil, err
		}
		if err := gw.AddSource(core.SourceConfig{URL: "gridrm:mem://" + name + ":1"}); err != nil {
			return nil, nil, err
		}
		srv := httptest.NewServer(web.NewServer(gw, nil, nil))
		if err := dir.Register(gma.Registration{Name: name, Endpoint: srv.URL}); err != nil {
			return nil, nil, err
		}
		gw.SetGlobalRouter(gma.NewContextRouter(dir, web.RemoteQueryContext, name))
		sites = append(sites, &fedSite{gw: gw, srv: srv})
	}
	return dir, sites, nil
}

func closeFederation(sites []*fedSite) {
	for _, s := range sites {
		s.srv.Close()
		s.gw.Close()
	}
}

func runE7(w io.Writer, quick bool) error {
	sizes := pick(quick, []int{2, 4}, []int{2, 4, 8, 16})
	iters := 100
	if quick {
		iters = 20
	}

	t := newTable(w, "federation size", "local query", "remote (1 hop)", "hop overhead",
		"VO-wide (site=*)", "directory lookup")
	for _, n := range sizes {
		dir, sites, err := buildFederation(n)
		if err != nil {
			closeFederation(sites)
			return err
		}
		entry := sites[0]
		client := &web.Client{BaseURL: entry.srv.URL, Principal: benchPrincipal}
		remoteSite := fmt.Sprintf("site%02d", n-1)

		local, err := timeIt(iters, func() error {
			_, err := client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime})
			return err
		})
		if err != nil {
			closeFederation(sites)
			return err
		}
		remote, err := timeIt(iters, func() error {
			_, err := client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor",
				Site: remoteSite, Mode: core.ModeRealTime})
			return err
		})
		if err != nil {
			closeFederation(sites)
			return err
		}
		// One SQL statement over the whole VO: the fan-out runs in
		// parallel, so cost should track the slowest site, not the sum.
		voWide, err := timeIt(iters, func() error {
			resp, err := entry.gw.QueryContext(context.Background(), core.QueryOptions{
				Principal: benchPrincipal,
				SQL:       "SELECT * FROM Processor",
				Site:      core.AllSites,
				Mode:      core.ModeRealTime,
			})
			if err != nil {
				return err
			}
			if resp.ResultSet.Len() != 2*n {
				return fmt.Errorf("VO rows = %d, want %d", resp.ResultSet.Len(), 2*n)
			}
			return nil
		})
		if err != nil {
			closeFederation(sites)
			return err
		}
		lookup, err := timeIt(iters*10, func() error {
			_, ok, err := dir.Lookup(remoteSite)
			if !ok {
				return fmt.Errorf("site lost")
			}
			return err
		})
		if err != nil {
			closeFederation(sites)
			return err
		}
		t.row(n, local, remote, remote-local, voWide, lookup)
		closeFederation(sites)
	}
	t.flush()

	// Registration/refresh behaviour.
	dir := gma.NewDirectory(50*time.Millisecond, nil)
	reg := gma.NewRegistrar(dir, gma.Registration{Name: "x", Endpoint: "http://x"}, 10*time.Millisecond)
	if err := reg.Start(); err != nil {
		return err
	}
	time.Sleep(120 * time.Millisecond)
	_, stillThere, _ := dir.Lookup("x")
	reg.Stop()
	time.Sleep(80 * time.Millisecond)
	_, afterStop, _ := dir.Lookup("x")
	fmt.Fprintf(w, "\nproducer freshness: alive under refresh=%v, gone after deregistration=%v\n",
		stillThere, !afterStop)
	return nil
}
