package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"gridrm/internal/core"
	"gridrm/internal/sitekit"
)

func init() {
	register(Experiment{
		ID:     "e10",
		Anchor: "§1.1 / §3.2.2: a homogeneous view of heterogeneous data",
		Claim: "the same host queried through every driver yields the same GLUE values " +
			"wherever the native source carries them, and NULL where translation is not " +
			"possible — the correctness table behind GridRM's whole premise",
		Run: runE10,
	})
}

func runE10(w io.Writer, quick bool) error {
	hosts := 4
	if quick {
		hosts = 2
	}
	site, err := sitekit.Start(sitekit.Options{Name: "e10", Hosts: hosts, Seed: 1010, CoarseCacheTTL: -1})
	if err != nil {
		return err
	}
	defer site.Close()
	gw, err := sitekit.NewGateway(site.Manifest(), site.Opts, false)
	if err != nil {
		return err
	}
	defer gw.Close()

	host := site.Sim.HostNames()[0]
	snap, _ := site.Sim.Snapshot(host)

	// Source per driver. SNMP agents are per-host, so pick the one that
	// serves the probed host (its registration names the host).
	sources := map[string]string{}
	for _, src := range gw.Sources() {
		if len(src.Drivers) != 1 {
			continue
		}
		name := src.Drivers[0]
		if name == "jdbc-snmp" {
			if strings.HasSuffix(src.Description, " "+host) {
				sources[name] = src.URL
			}
			continue
		}
		if _, dup := sources[name]; !dup {
			sources[name] = src.URL
		}
	}
	driverOrder := []string{"jdbc-snmp", "jdbc-ganglia", "jdbc-nws", "jdbc-netlogger", "jdbc-scms"}

	// Truth per checked field, from the simulator snapshot.
	type check struct {
		field string
		want  any
		tol   float64 // tolerance for floats (0 = exact)
	}
	checks := []check{
		{"HostName", snap.Name, 0},
		{"Model", snap.CPU.Model, 0},
		{"Vendor", snap.CPU.Vendor, 0},
		{"ClockSpeed", snap.CPU.ClockMHz, 0},
		{"LoadLast1Min", snap.Load1, 0},
		{"LoadLast15Min", snap.Load15, 0},
		{"Utilization", snap.UtilPct, 1.0},
	}

	fetchRow := func(url string) (map[string]any, error) {
		resp, err := gw.QueryContext(context.Background(), core.QueryOptions{
			Principal: benchPrincipal,
			SQL:       "SELECT * FROM Processor WHERE HostName = '" + host + "'",
			Sources:   []string{url},
			Mode:      core.ModeRealTime,
		})
		if err != nil {
			return nil, err
		}
		rs := resp.ResultSet
		if rs.Len() != 1 {
			return nil, fmt.Errorf("%s returned %d rows", url, rs.Len())
		}
		row := rs.RowAt(0)
		out := map[string]any{}
		for i, col := range rs.Metadata().Columns() {
			out[col.Name] = row[i]
		}
		return out, nil
	}

	rows := map[string]map[string]any{}
	for _, name := range driverOrder {
		url, ok := sources[name]
		if !ok {
			return fmt.Errorf("no source for %s", name)
		}
		row, err := fetchRow(url)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows[name] = row
	}

	headers := append([]string{"Processor field", "sim truth"}, driverOrder...)
	t := newTable(w, headers...)
	mismatches := 0
	for _, c := range checks {
		cells := []any{c.field, fmt.Sprintf("%v", c.want)}
		for _, name := range driverOrder {
			v := rows[name][c.field]
			cells = append(cells, renderCell(v, c.want, c.tol, &mismatches))
		}
		t.row(cells...)
	}
	t.flush()

	if mismatches > 0 {
		return fmt.Errorf("%d value mismatches across drivers", mismatches)
	}
	fmt.Fprintf(w, "\nevery non-NULL cell agrees with the simulator truth (float tolerance where\n"+
		"the native encoding is lossy); NULL marks fields the source cannot translate\n"+
		"(§3.1.4). Coverage per driver:\n")
	ct := newTable(w, "driver", "group", "mapped fields / total")
	sm := gw.SchemaManager()
	for _, name := range driverOrder {
		ds, _, ok := sm.Lookup(name)
		if !ok {
			continue
		}
		for _, g := range ds.GroupNames() {
			mapped, total := ds.Coverage(g)
			ct.row(name, g, fmt.Sprintf("%d/%d", mapped, total))
		}
	}
	ct.flush()
	return nil
}

func renderCell(got, want any, tol float64, mismatches *int) string {
	if got == nil {
		return "NULL"
	}
	ok := false
	switch wv := want.(type) {
	case string:
		ok = got == wv
	case int64:
		switch gv := got.(type) {
		case int64:
			ok = gv == wv
		case float64:
			ok = math.Abs(gv-float64(wv)) <= tol
		}
	case float64:
		switch gv := got.(type) {
		case float64:
			ok = math.Abs(gv-wv) <= tol
		case int64:
			ok = math.Abs(float64(gv)-wv) <= tol
		}
	}
	if !ok {
		*mismatches++
		return fmt.Sprintf("%v (MISMATCH)", got)
	}
	return fmt.Sprintf("%v ok", got)
}
