// Package bench implements the GridRM experiment harness: one runnable
// scenario per experiment in DESIGN.md's per-experiment index (E1–E10),
// each regenerating the table/behaviour the paper's figure or claim
// corresponds to. cmd/gridrm-bench drives the experiments from the command
// line; the repository-root bench_test.go wraps the same scenarios as
// testing.B benchmarks.
//
// The paper (CLUSTER 2003) reports no absolute numbers — its evaluation is
// the architecture figures plus deployment experience — so each experiment
// here states the qualitative claim it checks (who wins, by what shape)
// and prints the measured table; EXPERIMENTS.md records the outcomes.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// Experiment is one registered scenario.
type Experiment struct {
	// ID is the experiment key ("e1" ... "e10").
	ID string
	// Anchor names the paper figure/section reproduced.
	Anchor string
	// Claim is the qualitative expectation being checked.
	Claim string
	// Run executes the experiment, writing its table to w. Quick runs a
	// reduced parameter sweep for CI.
	Run func(w io.Writer, quick bool) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Lookup returns an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// e1 < e2 < ... < e10 (numeric suffix order).
		return expNum(out[i]) < expNum(out[j])
	})
	return out
}

func expNum(id string) int {
	n := 0
	for i := 1; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return n
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, quick bool) error {
	for _, id := range IDs() {
		if err := Run(w, id, quick); err != nil {
			return err
		}
	}
	return nil
}

// Run executes one experiment by ID with a standard header.
func Run(w io.Writer, id string, quick bool) error {
	e, ok := Lookup(id)
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	fmt.Fprintf(w, "\n=== %s — %s ===\n", e.ID, e.Anchor)
	fmt.Fprintf(w, "claim: %s\n\n", e.Claim)
	start := time.Now()
	if err := e.Run(w, quick); err != nil {
		return fmt.Errorf("bench: %s: %w", id, err)
	}
	fmt.Fprintf(w, "\n[%s completed in %s]\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

// table is a small helper for aligned experiment output.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer, headers ...string) *table {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	t := &table{tw: tw}
	t.row(toAny(headers)...)
	sep := make([]any, len(headers))
	for i, h := range headers {
		sep[i] = dashes(len(h))
	}
	t.row(sep...)
	return t
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		switch x := c.(type) {
		case float64:
			fmt.Fprintf(t.tw, "%.2f", x)
		case time.Duration:
			switch {
			case x >= time.Millisecond:
				fmt.Fprintf(t.tw, "%s", x.Round(10*time.Microsecond))
			case x >= time.Microsecond:
				fmt.Fprintf(t.tw, "%s", x.Round(10*time.Nanosecond))
			default:
				fmt.Fprintf(t.tw, "%s", x)
			}
		default:
			fmt.Fprintf(t.tw, "%v", x)
		}
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { _ = t.tw.Flush() }

// timeIt runs fn n times and returns the mean wall-clock duration.
func timeIt(n int, fn func() error) (time.Duration, error) {
	if n <= 0 {
		n = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// pick returns quick values when quick is set, full otherwise.
func pick[T any](quick bool, quickVals, fullVals []T) []T {
	if quick {
		return quickVals
	}
	return fullVals
}
