package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 10 {
		t.Fatalf("experiments = %v", ids)
	}
	for i, id := range ids {
		want := "e" + string(rune('1'+i))
		if i == 9 {
			want = "e10"
		}
		if id != want {
			t.Errorf("ids[%d] = %q, want %q (numeric order)", i, id, want)
		}
		e, ok := Lookup(id)
		if !ok || e.Anchor == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete: %+v", id, e)
		}
	}
	if _, ok := Lookup("e99"); ok {
		t.Error("unknown experiment found")
	}
	if err := Run(io.Discard, "e99", true); err == nil {
		t.Error("running unknown experiment succeeded")
	}
}

// TestEveryExperimentRunsQuick executes the whole harness in quick mode —
// the experiments are themselves assertions (E9 and E10 return errors on
// contract violations), so this is the harness's regression test.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick harness; skipped in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(&buf, id, true); err != nil {
				t.Fatalf("%s: %v\n%s", id, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, "=== "+id+" ") {
				t.Errorf("missing header:\n%s", out)
			}
			if !strings.Contains(out, "completed in") {
				t.Errorf("missing completion marker:\n%s", out)
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable(&buf, "name", "value")
	tb.row("x", 1.5)
	tb.row("y", 42)
	tb.flush()
	out := buf.String()
	for _, want := range []string{"name", "-----", "1.50", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPickAndTimeIt(t *testing.T) {
	if got := pick(true, []int{1}, []int{1, 2, 3}); len(got) != 1 {
		t.Error("quick pick wrong")
	}
	if got := pick(false, []int{1}, []int{1, 2, 3}); len(got) != 3 {
		t.Error("full pick wrong")
	}
	n := 0
	d, err := timeIt(5, func() error { n++; return nil })
	if err != nil || n != 5 || d < 0 {
		t.Errorf("timeIt: %v %d %v", d, n, err)
	}
	if _, err := timeIt(1, func() error { return io.EOF }); err == nil {
		t.Error("timeIt swallowed error")
	}
}
