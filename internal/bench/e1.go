package bench

import (
	"context"
	"fmt"
	"io"

	"gridrm/internal/core"
	"gridrm/internal/security"
	"gridrm/internal/sitekit"
)

func init() {
	register(Experiment{
		ID:     "e1",
		Anchor: "Fig 3: the path of a query for resource data within the local Gateway",
		Claim: "a SQL query flows RequestManager → ConnectionManager → DriverManager → " +
			"driver → SchemaManager and returns a GLUE ResultSet from every driver; " +
			"cached-mode responses are much faster than real-time harvests",
		Run: runE1,
	})
}

var benchPrincipal = security.Principal{Name: "bench", Roles: []string{"operator"}}

func runE1(w io.Writer, quick bool) error {
	iters := 20
	if quick {
		iters = 5
	}
	site, err := sitekit.Start(sitekit.Options{Name: "e1", Hosts: 4, Seed: 11, CoarseCacheTTL: -1})
	if err != nil {
		return err
	}
	defer site.Close()
	gw, err := sitekit.NewGateway(site.Manifest(), site.Opts, false)
	if err != nil {
		return err
	}
	defer gw.Close()

	// One source per driver type (sources carry a single static driver
	// preference in this deployment).
	type target struct {
		label string
		url   string
	}
	var targets []target
	seen := map[string]bool{}
	for _, src := range gw.Sources() {
		if len(src.Drivers) != 1 || seen[src.Drivers[0]] {
			continue
		}
		seen[src.Drivers[0]] = true
		targets = append(targets, target{src.Drivers[0], src.URL})
	}

	t := newTable(w, "driver", "real-time/query", "cached/query", "speedup", "rows")
	for _, tgt := range targets {
		query := func(mode core.Mode) func() error {
			return func() error {
				_, err := gw.QueryContext(context.Background(), core.QueryOptions{
					Principal: benchPrincipal,
					SQL:       "SELECT * FROM Processor",
					Sources:   []string{tgt.url},
					Mode:      mode,
				})
				return err
			}
		}
		// Warm the pool and driver cache once.
		if err := query(core.ModeRealTime)(); err != nil {
			return fmt.Errorf("%s: %w", tgt.label, err)
		}
		rt, err := timeIt(iters, query(core.ModeRealTime))
		if err != nil {
			return err
		}
		// Warm the query cache; the gateway cache TTL default is 2s, so
		// keep cached timing inside it.
		if err := query(core.ModeCached)(); err != nil {
			return err
		}
		cachedIters := iters * 10
		cached, err := timeIt(cachedIters, query(core.ModeCached))
		if err != nil {
			return err
		}
		resp, err := gw.QueryContext(context.Background(), core.QueryOptions{Principal: benchPrincipal,
			SQL: "SELECT * FROM Processor", Sources: []string{tgt.url}})
		if err != nil {
			return err
		}
		speedup := float64(rt) / float64(cached)
		t.row(tgt.label, rt, cached, fmt.Sprintf("%.0fx", speedup), resp.ResultSet.Len())
	}
	t.flush()

	// Per-stage accounting from the component counters.
	st := gw.Stats()
	ps := gw.Pool().Stats()
	ds := gw.DriverManager().Stats()
	fmt.Fprintf(w, "\nstage counters: harvests=%d cache-served=%d | pool hits=%d misses=%d opens=%d | driver scans=%d probes=%d last-good hits=%d\n",
		st.Harvests, st.CacheServed, ps.Hits, ps.Misses, ps.Opens, ds.Scans, ds.ScanProbes, ds.CacheHits)
	return nil
}
