package bench

import (
	"errors"
	"fmt"
	"io"

	"gridrm/internal/driver"
	"gridrm/internal/resultset"
)

func init() {
	register(Experiment{
		ID:     "e9",
		Anchor: "§3.2.1: incremental driver development on unimplemented super-classes",
		Claim: "a driver implementing only a subset of the API behaves like a full " +
			"driver that errored — every unimplemented method fails uniformly with " +
			"ErrNotImplemented rather than being a compile-time hole, and the base " +
			"indirection costs nanoseconds",
		Run: runE9,
	})
}

// minimalStmt implements exactly one method over the base, as the paper's
// minimal-driver recipe prescribes.
type minimalStmt struct {
	driver.UnimplementedStmt
}

func (minimalStmt) ExecuteQuery(string) (*resultset.ResultSet, error) {
	meta, err := resultset.NewMetadata([]resultset.Column{{Name: "X"}})
	if err != nil {
		return nil, err
	}
	return resultset.New(meta), nil
}

func runE9(w io.Writer, quick bool) error {
	iters := 200000
	if quick {
		iters = 20000
	}

	// API surface coverage: every method of the base types must answer,
	// none may panic, and fallible ones must return ErrNotImplemented.
	type call struct {
		name  string
		check func() (string, bool)
	}
	base := driver.UnimplementedConn{}
	stmt := driver.UnimplementedStmt{}
	calls := []call{
		{"Conn.CreateStatement", func() (string, bool) {
			_, err := base.CreateStatement()
			return outcome(err), errors.Is(err, driver.ErrNotImplemented)
		}},
		{"Conn.Ping", func() (string, bool) {
			err := base.Ping()
			return outcome(err), errors.Is(err, driver.ErrNotImplemented)
		}},
		{"Conn.Close", func() (string, bool) {
			err := base.Close()
			return outcome(err), err == nil // closing a minimal driver is safe
		}},
		{"Conn.URL", func() (string, bool) { return "\"\"", base.URL() == "" }},
		{"Conn.Driver", func() (string, bool) { return "\"\"", base.Driver() == "" }},
		{"Conn.SourceInfo", func() (string, bool) {
			return "zero value", base.SourceInfo().Protocol == ""
		}},
		{"Stmt.ExecuteQuery", func() (string, bool) {
			_, err := stmt.ExecuteQuery("SELECT * FROM Processor")
			return outcome(err), errors.Is(err, driver.ErrNotImplemented)
		}},
		{"Stmt.SetMaxRows", func() (string, bool) {
			err := stmt.SetMaxRows(10)
			return outcome(err), errors.Is(err, driver.ErrNotImplemented)
		}},
		{"Stmt.Close", func() (string, bool) {
			err := stmt.Close()
			return outcome(err), err == nil
		}},
	}
	t := newTable(w, "API method", "behaviour", "as specified")
	allOK := true
	for _, c := range calls {
		got, ok := c.check()
		allOK = allOK && ok
		t.row(c.name, got, ok)
	}
	t.flush()
	if !allOK {
		return fmt.Errorf("base-class contract violated")
	}

	// Cost of the pattern: unimplemented error path vs a one-method
	// override, both through the interface.
	var s driver.Stmt = driver.UnimplementedStmt{}
	unimpl, err := timeIt(iters, func() error {
		_, err := s.ExecuteQuery("q")
		if !errors.Is(err, driver.ErrNotImplemented) {
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	var ms driver.Stmt = minimalStmt{}
	impl, err := timeIt(iters, func() error {
		_, err := ms.ExecuteQuery("q")
		return err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncall cost: unimplemented (error path) %s/call, minimal override %s/call\n",
		unimpl, impl)
	fmt.Fprintf(w, "a minimal driver (1 of %d methods overridden) is fully usable through the API\n", len(calls))
	return nil
}

func outcome(err error) string {
	if err == nil {
		return "nil error"
	}
	if errors.Is(err, driver.ErrNotImplemented) {
		return "ErrNotImplemented"
	}
	return err.Error()
}
