package bench

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"gridrm/internal/event"
)

func init() {
	register(Experiment{
		ID:     "e5",
		Anchor: "Fig 4: the Event Manager architecture",
		Claim: "the fast buffer absorbs bursts without losing events; delivery cost " +
			"scales with listener fan-out; threshold rules synthesise alerts promptly " +
			"and forward them to outbound transmitters",
		Run: runE5,
	})
}

type countingOutbound struct {
	n atomic.Int64
}

func (c *countingOutbound) Name() string { return "counting" }
func (c *countingOutbound) Transmit(event.Event) error {
	c.n.Add(1)
	return nil
}

func runE5(w io.Writer, quick bool) error {
	burst := 100000
	if quick {
		burst = 10000
	}
	fanouts := pick(quick, []int{1, 8}, []int{1, 4, 16, 64})

	t := newTable(w, "listeners", "burst size", "drain time", "events/sec", "delivered", "lost", "high water")
	for _, listeners := range fanouts {
		m := event.NewManager(event.Options{HistorySize: 1024})
		var delivered atomic.Int64
		for i := 0; i < listeners; i++ {
			m.Subscribe(event.Filter{}, func(event.Event) { delivered.Add(1) })
		}
		start := time.Now()
		for i := 0; i < burst; i++ {
			m.Publish(event.Event{Name: "burst", Host: "h", Value: float64(i), Time: time.Unix(int64(i), 0)})
		}
		m.Drain()
		elapsed := time.Since(start)
		want := int64(burst * listeners)
		lost := want - delivered.Load()
		rate := float64(burst) / elapsed.Seconds()
		t.row(listeners, burst, elapsed.Round(time.Millisecond),
			fmt.Sprintf("%.0f", rate), delivered.Load(), lost, m.Stats().HighWater)
		m.Close()
	}
	t.flush()

	// Threshold alert latency: publish a crossing event, time until the
	// alert lands at a listener and an outbound transmitter.
	m := event.NewManager(event.Options{})
	defer m.Close()
	if err := m.AddRule(event.ThresholdRule{
		Name: "load-alarm", Match: event.Filter{Name: "load"},
		Op: event.Above, Threshold: 4, Rearm: 0.75,
	}); err != nil {
		return err
	}
	out := &countingOutbound{}
	m.AddOutbound(event.Filter{Severity: event.SeverityAlert}, out)
	alertAt := make(chan time.Time, 1)
	m.Subscribe(event.Filter{Severity: event.SeverityAlert}, func(event.Event) {
		select {
		case alertAt <- time.Now():
		default:
		}
	})
	iters := 200
	if quick {
		iters = 50
	}
	var total time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		m.Publish(event.Event{Name: "load", Host: "h", Value: 9, Time: time.Unix(int64(i), 0)})
		at := <-alertAt
		total += at.Sub(start)
		// Re-arm the rule.
		m.Publish(event.Event{Name: "load", Host: "h", Value: 0, Time: time.Unix(int64(i), 1)})
		m.Drain()
	}
	fmt.Fprintf(w, "\nthreshold alert latency (publish → alert delivered): mean %s over %d alerts\n",
		(total / time.Duration(iters)).Round(time.Microsecond), iters)
	fmt.Fprintf(w, "alerts transmitted to outbound driver: %d (transmit errors: %d)\n",
		out.n.Load(), m.Stats().TransmitErrors)
	return nil
}
