package bench

import (
	"fmt"
	"io"

	"gridrm/internal/security"
)

func init() {
	register(Experiment{
		ID:     "e8",
		Anchor: "§2: coarse and fine grained security layers",
		Claim: "per-query CGSL/FGSL checks cost microseconds even with large rule " +
			"sets (first-match-wins scan), so multi-level security does not dominate " +
			"the query path; Defer decisions route to the owning gateway",
		Run: runE8,
	})
}

func runE8(w io.Writer, quick bool) error {
	ruleCounts := pick(quick, []int{10, 1000}, []int{10, 100, 1000, 10000})
	iters := 20000
	if quick {
		iters = 2000
	}
	alice := security.Principal{Name: "alice", Roles: []string{"operator"}}

	t := newTable(w, "rules", "coarse allow (first rule)", "coarse deny (full scan)", "fine allow", "fine deny")
	for _, n := range ruleCounts {
		coarse := security.NewCoarsePolicy(security.Deny)
		coarse.Add(security.CoarseRule{Principal: "alice", Decision: security.Allow})
		for i := 1; i < n; i++ {
			coarse.Add(security.CoarseRule{Principal: fmt.Sprintf("user%05d", i), Decision: security.Allow})
		}
		fast, err := timeIt(iters, func() error {
			coarse.Check(alice, security.OpQueryRealTime)
			return nil
		})
		if err != nil {
			return err
		}
		slow, err := timeIt(iters, func() error {
			coarse.Check(security.Principal{Name: "zz-nobody"}, security.OpQueryRealTime)
			return nil
		})
		if err != nil {
			return err
		}

		fine := security.NewFinePolicy(security.Deny)
		fine.Add(security.FineRule{Principal: "alice", Source: "gridrm:snmp://%", Decision: security.Allow})
		for i := 1; i < n; i++ {
			fine.Add(security.FineRule{Principal: fmt.Sprintf("user%05d", i), Decision: security.Allow})
		}
		fAllow, err := timeIt(iters, func() error {
			fine.Check(alice, "gridrm:snmp://h:1", "Processor")
			return nil
		})
		if err != nil {
			return err
		}
		fDeny, err := timeIt(iters, func() error {
			fine.Check(security.Principal{Name: "zz-nobody"}, "gridrm:snmp://h:1", "Processor")
			return nil
		})
		if err != nil {
			return err
		}
		t.row(n, fast, slow, fAllow, fDeny)
	}
	t.flush()

	// Defer semantics for the gateway hierarchy.
	fine := security.NewFinePolicy(security.Allow)
	fine.Add(security.FineRule{Source: "gridrm:remote://%", Decision: security.Defer})
	d := fine.Check(alice, "gridrm:remote://elsewhere:1", "Memory")
	fmt.Fprintf(w, "\ndeferred decision for a remote resource: %s (the owning gateway decides)\n", d)
	fmt.Fprintf(w, "policy stats: %+v\n", fine.Stats())
	return nil
}
