package bench

import (
	"fmt"
	"io"

	"gridrm/internal/driver"
	"gridrm/internal/drivers/memdrv"
)

func init() {
	register(Experiment{
		ID:     "e2",
		Anchor: "Fig 5 + Table 2: dynamically locating a GridRM data source",
		Claim: "static preferences and the last-good driver cache avoid the AcceptsURL " +
			"scan, whose cost grows with registry size; when a cached driver dies the " +
			"configured policy (retry / try-next / report) governs failover",
		Run: runE2,
	})
}

// e2Registry builds a manager with n registered drivers where only the last
// one accepts the target protocol.
func e2Registry(n int) (*driver.Manager, *memdrv.Backend, string) {
	dm := driver.NewManager()
	backend := memdrv.NewBackend([]string{"h1"})
	for i := 0; i < n-1; i++ {
		d := memdrv.New(fmt.Sprintf("jdbc-filler-%02d", i), fmt.Sprintf("filler%02d", i), backend)
		_ = dm.RegisterDriver(d)
	}
	_ = dm.RegisterDriver(memdrv.New("jdbc-target", "target", backend))
	return dm, backend, "gridrm:target://agent:1"
}

func runE2(w io.Writer, quick bool) error {
	sizes := pick(quick, []int{4, 16}, []int{1, 4, 16, 64})
	iters := 2000
	if quick {
		iters = 200
	}

	t := newTable(w, "registered drivers", "dynamic scan", "last-good cache", "static pref", "probes/scan")
	for _, n := range sizes {
		// Dynamic: clear the cache before every connect.
		dm, _, url := e2Registry(n)
		dyn, err := timeIt(iters, func() error {
			dm.ClearCache()
			conn, err := dm.Connect(url, nil)
			if err != nil {
				return err
			}
			return conn.Close()
		})
		if err != nil {
			return err
		}
		stats := dm.Stats()
		probes := float64(stats.ScanProbes) / float64(stats.Scans)

		// Cached: warm once, then reconnects hit the last-good entry.
		dm2, _, url2 := e2Registry(n)
		if conn, err := dm2.Connect(url2, nil); err != nil {
			return err
		} else {
			_ = conn.Close()
		}
		cached, err := timeIt(iters, func() error {
			conn, err := dm2.Connect(url2, nil)
			if err != nil {
				return err
			}
			return conn.Close()
		})
		if err != nil {
			return err
		}

		// Static preference.
		dm3, _, url3 := e2Registry(n)
		dm3.SetPreferences(url3, []string{"jdbc-target"})
		static, err := timeIt(iters, func() error {
			conn, err := dm3.Connect(url3, nil)
			if err != nil {
				return err
			}
			return conn.Close()
		})
		if err != nil {
			return err
		}
		t.row(n, dyn, cached, static, fmt.Sprintf("%.1f", probes))
	}
	t.flush()

	// Failover behaviour: cached driver dies; TryNext relocates, Report
	// surfaces the error (§3.1.3 configuration rules).
	fmt.Fprintf(w, "\nfailover when the cached driver dies:\n")
	ft := newTable(w, "policy", "retries", "outcome", "connect failures", "failovers")
	for _, policy := range []driver.Policy{
		{Retries: 0, OnFailure: driver.TryNext},
		{Retries: 2, OnFailure: driver.TryNext},
		{Retries: 0, OnFailure: driver.Report},
	} {
		dm := driver.NewManager()
		good := memdrv.NewBackend([]string{"h1"})
		dying := memdrv.NewBackend([]string{"h1"})
		_ = dm.RegisterDriver(memdrv.New("jdbc-dying", "shared", dying))
		_ = dm.RegisterDriver(memdrv.New("jdbc-backup", "shared", good))
		dm.SetPolicy(policy)
		url := "gridrm:shared://agent:1"
		if conn, err := dm.Connect(url, nil); err != nil {
			return err
		} else {
			_ = conn.Close()
		}
		dying.SetFailConnect(true)
		outcome := "reconnected via jdbc-backup"
		conn, err := dm.Connect(url, nil)
		if err != nil {
			outcome = "error reported to client"
		} else {
			outcome = "reconnected via " + conn.Driver()
			_ = conn.Close()
		}
		st := dm.Stats()
		ft.row(policy.OnFailure.String(), policy.Retries, outcome, st.ConnectFailures, st.Failovers)
	}
	ft.flush()
	return nil
}
