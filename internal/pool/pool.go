// Package pool implements the GridRM ConnectionManager (paper §3.1.2): it
// executes real-time queries against resource drivers through a pool of
// driver connections, because "driver connections typically incur an
// overhead when a data source is first connected, especially if drivers are
// dynamically mapped to the data source".
//
// The manager asks the GridRMDriverManager for a new connection only when
// no suitable pooled instance exists; every new connection is registered
// with the pool before use. Idle connections are validated with Ping before
// reuse and reaped after MaxIdleTime.
package pool

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/trace"
)

// Options configures a Manager.
type Options struct {
	// MaxIdlePerSource bounds idle connections kept per data source
	// (default 4).
	MaxIdlePerSource int
	// MaxIdleTime evicts idle connections older than this (default 5m).
	MaxIdleTime time.Duration
	// Disabled turns pooling off: every Get opens a fresh connection and
	// every Release closes it. Used by the E3 ablation.
	Disabled bool
	// DialObserver, when set, receives the latency in seconds of every
	// driver connect the pool performs, successful or not (the gateway
	// wires it to the gridrm_pool_dial_seconds histogram).
	DialObserver func(seconds float64)
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
}

// Stats counts ConnectionManager activity.
type Stats struct {
	// Hits counts Gets satisfied from the pool.
	Hits int64
	// Misses counts Gets that had to open a new connection.
	Misses int64
	// Opens counts connections opened via the DriverManager.
	Opens int64
	// Closes counts underlying connections closed.
	Closes int64
	// PingFailures counts pooled connections discarded as stale.
	PingFailures int64
	// Evictions counts idle connections dropped by capacity or age.
	Evictions int64
}

// Manager is the ConnectionManager.
type Manager struct {
	drivers *driver.Manager
	opts    Options

	mu   sync.Mutex
	idle map[string][]idleConn

	hits, misses, opens, closes atomic.Int64
	pingFailures, evictions     atomic.Int64
}

type idleConn struct {
	conn    driver.Conn
	retired time.Time
}

// New creates a ConnectionManager on top of a DriverManager.
func New(dm *driver.Manager, opts Options) *Manager {
	if opts.MaxIdlePerSource <= 0 {
		opts.MaxIdlePerSource = 4
	}
	if opts.MaxIdleTime <= 0 {
		opts.MaxIdleTime = 5 * time.Minute
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Manager{drivers: dm, opts: opts, idle: make(map[string][]idleConn)}
}

// key identifies a pool bucket: URL plus canonicalised properties, since
// connections opened with different credentials must not be shared.
func key(url string, props driver.Properties) string {
	if len(props) == 0 {
		return url
	}
	parts := make([]string, 0, len(props))
	for k, v := range props {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return url + "\x00" + strings.Join(parts, "\x00")
}

// Conn is a pooled connection handle. Callers must call Release (to return
// it for reuse) or Discard (to close it) when done; the embedded
// driver.Conn methods remain available in between.
type Conn struct {
	driver.Conn
	mgr      *Manager
	key      string
	released atomic.Bool
}

// Release returns the connection to the pool for reuse.
func (c *Conn) Release() {
	if c.released.Swap(true) {
		return
	}
	c.mgr.put(c.key, c.Conn)
}

// Discard closes the underlying connection without pooling it; use after
// errors that suggest the session is broken.
func (c *Conn) Discard() {
	if c.released.Swap(true) {
		return
	}
	c.mgr.closes.Add(1)
	_ = driver.SafeClose(c.Conn)
}

// Get returns a connection to the data source, reusing a pooled instance
// when one validates, otherwise opening a new one via the DriverManager.
func (m *Manager) Get(url string, props driver.Properties) (*Conn, error) {
	return m.GetContext(context.Background(), url, props)
}

// GetContext is Get bounded by ctx: if ctx expires while a new connection
// is being opened, the call returns ctx.Err() immediately. The in-flight
// connect keeps running in the background; when it eventually succeeds, the
// connection is adopted into the idle pool (not leaked), ready for the next
// caller. When the request is being traced, the checkout is recorded as a
// "pool-checkout" span noting whether an idle connection was reused.
func (m *Manager) GetContext(ctx context.Context, url string, props driver.Properties) (*Conn, error) {
	_, sp := trace.StartSpan(ctx, "pool-checkout")
	if sp != nil {
		sp.SetAttr("url", url)
	}
	conn, reused, err := m.getContext(ctx, url, props)
	if sp != nil {
		sp.SetAttr("reused", strconv.FormatBool(reused))
		sp.SetError(err)
		sp.End()
	}
	return conn, err
}

func (m *Manager) getContext(ctx context.Context, url string, props driver.Properties) (*Conn, bool, error) {
	k := key(url, props)
	if !m.opts.Disabled {
		for {
			conn, ok := m.takeIdle(k)
			if !ok {
				break
			}
			if err := m.ping(ctx, k, conn); err != nil {
				if ctx.Err() != nil {
					return nil, false, ctx.Err()
				}
				continue
			}
			m.hits.Add(1)
			return &Conn{Conn: conn, mgr: m, key: k}, true, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	m.misses.Add(1)
	if ctx.Done() == nil {
		conn, err := m.connect(url, props)
		if err != nil {
			return nil, false, fmt.Errorf("pool: %w", err)
		}
		m.opens.Add(1)
		return &Conn{Conn: conn, mgr: m, key: k}, false, nil
	}
	type result struct {
		conn driver.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := m.connect(url, props)
		ch <- result{conn, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, false, fmt.Errorf("pool: %w", r.err)
		}
		m.opens.Add(1)
		return &Conn{Conn: r.conn, mgr: m, key: k}, false, nil
	case <-ctx.Done():
		go func() {
			if r := <-ch; r.err == nil {
				m.opens.Add(1)
				m.put(k, r.conn)
			}
		}()
		return nil, false, ctx.Err()
	}
}

// connect opens a new connection through the DriverManager, reporting its
// dial latency to the observer when one is configured.
func (m *Manager) connect(url string, props driver.Properties) (driver.Conn, error) {
	start := m.opts.Clock()
	conn, err := m.drivers.Connect(url, props)
	if m.opts.DialObserver != nil {
		m.opts.DialObserver(m.opts.Clock().Sub(start).Seconds())
	}
	return conn, err
}

// ping validates an idle connection before reuse. A driver's Ping carries no
// context, so when ctx can expire the wait (not the probe) is abandoned at
// the deadline: the probe finishes in the background and re-pools or closes
// the connection on its own outcome, while the caller gets ctx.Err().
func (m *Manager) ping(ctx context.Context, k string, conn driver.Conn) error {
	discard := func(err error) error {
		m.pingFailures.Add(1)
		m.closes.Add(1)
		_ = driver.SafeClose(conn)
		return err
	}
	if ctx.Done() == nil {
		if err := driver.SafePing(conn); err != nil {
			return discard(err)
		}
		return nil
	}
	if err := ctx.Err(); err != nil {
		m.put(k, conn)
		return err
	}
	ch := make(chan error, 1)
	go func() { ch <- driver.SafePing(conn) }()
	select {
	case err := <-ch:
		if err != nil {
			return discard(err)
		}
		return nil
	case <-ctx.Done():
		go func() {
			if err := <-ch; err != nil {
				_ = discard(err)
			} else {
				m.put(k, conn)
			}
		}()
		return ctx.Err()
	}
}

func (m *Manager) takeIdle(k string) (driver.Conn, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	conns := m.idle[k]
	if len(conns) == 0 {
		return nil, false
	}
	last := conns[len(conns)-1]
	m.idle[k] = conns[:len(conns)-1]
	return last.conn, true
}

func (m *Manager) put(k string, conn driver.Conn) {
	if m.opts.Disabled {
		m.closes.Add(1)
		_ = driver.SafeClose(conn)
		return
	}
	m.mu.Lock()
	conns := m.idle[k]
	if len(conns) >= m.opts.MaxIdlePerSource {
		m.mu.Unlock()
		m.evictions.Add(1)
		m.closes.Add(1)
		_ = driver.SafeClose(conn)
		return
	}
	m.idle[k] = append(conns, idleConn{conn: conn, retired: m.opts.Clock()})
	m.mu.Unlock()
}

// Reap closes idle connections older than MaxIdleTime and returns how many
// were evicted. Gateways call this periodically.
func (m *Manager) Reap() int {
	cutoff := m.opts.Clock().Add(-m.opts.MaxIdleTime)
	var victims []driver.Conn
	m.mu.Lock()
	for k, conns := range m.idle {
		keep := conns[:0]
		for _, ic := range conns {
			if ic.retired.Before(cutoff) {
				victims = append(victims, ic.conn)
			} else {
				keep = append(keep, ic)
			}
		}
		if len(keep) == 0 {
			delete(m.idle, k)
		} else {
			m.idle[k] = keep
		}
	}
	m.mu.Unlock()
	for _, c := range victims {
		m.evictions.Add(1)
		m.closes.Add(1)
		_ = driver.SafeClose(c)
	}
	return len(victims)
}

// CloseAll drains and closes every idle connection (gateway shutdown).
func (m *Manager) CloseAll() {
	m.mu.Lock()
	all := m.idle
	m.idle = make(map[string][]idleConn)
	m.mu.Unlock()
	for _, conns := range all {
		for _, ic := range conns {
			m.closes.Add(1)
			_ = driver.SafeClose(ic.conn)
		}
	}
}

// IdleCount returns the number of idle pooled connections.
func (m *Manager) IdleCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, conns := range m.idle {
		n += len(conns)
	}
	return n
}

// Stats returns a snapshot of pool counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Hits:         m.hits.Load(),
		Misses:       m.misses.Load(),
		Opens:        m.opens.Load(),
		Closes:       m.closes.Load(),
		PingFailures: m.pingFailures.Load(),
		Evictions:    m.evictions.Load(),
	}
}

// Drivers exposes the underlying DriverManager (the RequestManager reaches
// it through the ConnectionManager, as in Fig 3).
func (m *Manager) Drivers() *driver.Manager { return m.drivers }
