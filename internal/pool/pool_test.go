package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/driver"
)

// slowDriver counts connects and can fail pings after poisoning.
type slowDriver struct {
	name     string
	connects atomic.Int64
	poison   atomic.Bool
}

func (d *slowDriver) Name() string { return d.name }

func (d *slowDriver) AcceptsURL(url string) bool {
	_, err := driver.ParseURL(url)
	return err == nil
}

func (d *slowDriver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	d.connects.Add(1)
	return &slowConn{d: d, url: url}, nil
}

type slowConn struct {
	driver.UnimplementedConn
	d      *slowDriver
	url    string
	closed atomic.Bool
}

func (c *slowConn) URL() string    { return c.url }
func (c *slowConn) Driver() string { return c.d.name }
func (c *slowConn) Ping() error {
	if c.d.poison.Load() {
		return errors.New("stale")
	}
	return nil
}
func (c *slowConn) Close() error {
	c.closed.Store(true)
	return nil
}

func newManager(t *testing.T, opts Options) (*Manager, *slowDriver) {
	t.Helper()
	d := &slowDriver{name: "jdbc-slow"}
	dm := driver.NewManager()
	if err := dm.RegisterDriver(d); err != nil {
		t.Fatal(err)
	}
	return New(dm, opts), d
}

const url = "gridrm:slow://h:1"

func TestGetReleaseReuse(t *testing.T) {
	m, d := newManager(t, Options{})
	c1, err := m.Get(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1.Release()
	c2, err := m.Get(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Release()
	if d.connects.Load() != 1 {
		t.Errorf("connects = %d, want 1 (reuse)", d.connects.Load())
	}
	s := m.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Opens != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	m, _ := newManager(t, Options{})
	c, _ := m.Get(url, nil)
	c.Release()
	c.Release()
	if m.IdleCount() != 1 {
		t.Errorf("idle = %d after double release", m.IdleCount())
	}
}

func TestDiscardCloses(t *testing.T) {
	m, _ := newManager(t, Options{})
	c, _ := m.Get(url, nil)
	underlying := c.Conn.(*slowConn)
	c.Discard()
	if !underlying.closed.Load() {
		t.Error("Discard did not close")
	}
	if m.IdleCount() != 0 {
		t.Error("discarded connection pooled")
	}
	c.Release() // must be a no-op after Discard
	if m.IdleCount() != 0 {
		t.Error("Release after Discard pooled a closed conn")
	}
}

func TestPropertiesSeparateBuckets(t *testing.T) {
	m, d := newManager(t, Options{})
	c1, _ := m.Get(url, driver.Properties{"community": "public"})
	c1.Release()
	c2, err := m.Get(url, driver.Properties{"community": "secret"})
	if err != nil {
		t.Fatal(err)
	}
	c2.Release()
	if d.connects.Load() != 2 {
		t.Errorf("connects = %d, want 2 (different props must not share)", d.connects.Load())
	}
	c3, _ := m.Get(url, driver.Properties{"community": "public"})
	c3.Release()
	if d.connects.Load() != 2 {
		t.Error("same props did not reuse")
	}
}

func TestStalePingDiscarded(t *testing.T) {
	m, d := newManager(t, Options{})
	c, _ := m.Get(url, nil)
	c.Release()
	d.poison.Store(true)
	if _, err := m.Get(url, nil); err != nil {
		t.Fatal(err) // new connect still succeeds
	}
	s := m.Stats()
	if s.PingFailures != 1 {
		t.Errorf("ping failures = %d", s.PingFailures)
	}
	if d.connects.Load() != 2 {
		t.Errorf("connects = %d, want 2", d.connects.Load())
	}
}

func TestMaxIdlePerSource(t *testing.T) {
	m, _ := newManager(t, Options{MaxIdlePerSource: 2})
	var conns []*Conn
	for i := 0; i < 4; i++ {
		c, err := m.Get(url, nil)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		c.Release()
	}
	if m.IdleCount() != 2 {
		t.Errorf("idle = %d, want 2", m.IdleCount())
	}
	if m.Stats().Evictions != 2 {
		t.Errorf("evictions = %d", m.Stats().Evictions)
	}
}

func TestReap(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	m, _ := newManager(t, Options{MaxIdleTime: 10 * time.Second, Clock: clock})
	c, _ := m.Get(url, nil)
	c.Release()
	now = now.Add(5 * time.Second)
	if n := m.Reap(); n != 0 {
		t.Errorf("reaped %d fresh conns", n)
	}
	now = now.Add(6 * time.Second)
	if n := m.Reap(); n != 1 {
		t.Errorf("reaped %d, want 1", n)
	}
	if m.IdleCount() != 0 {
		t.Error("idle not drained")
	}
}

func TestDisabledPooling(t *testing.T) {
	m, d := newManager(t, Options{Disabled: true})
	for i := 0; i < 3; i++ {
		c, err := m.Get(url, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Release()
	}
	if d.connects.Load() != 3 {
		t.Errorf("connects = %d, want 3 with pooling off", d.connects.Load())
	}
	if m.IdleCount() != 0 {
		t.Error("disabled pool kept connections")
	}
	if m.Stats().Hits != 0 {
		t.Error("disabled pool recorded hits")
	}
}

func TestCloseAll(t *testing.T) {
	m, _ := newManager(t, Options{})
	c1, _ := m.Get(url, nil)
	c2, _ := m.Get("gridrm:slow://h2:1", nil)
	c1.Release()
	c2.Release()
	if m.IdleCount() != 2 {
		t.Fatalf("idle = %d", m.IdleCount())
	}
	m.CloseAll()
	if m.IdleCount() != 0 {
		t.Error("CloseAll left idle conns")
	}
	if m.Stats().Closes != 2 {
		t.Errorf("closes = %d", m.Stats().Closes)
	}
}

func TestGetErrorPropagates(t *testing.T) {
	dm := driver.NewManager() // no drivers at all
	m := New(dm, Options{})
	if _, err := m.Get(url, nil); err == nil {
		t.Error("Get with no drivers succeeded")
	}
}

func TestConcurrentGetRelease(t *testing.T) {
	m, d := newManager(t, Options{MaxIdlePerSource: 8})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				u := fmt.Sprintf("gridrm:slow://h%d:1", i%2)
				c, err := m.Get(u, nil)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				c.Release()
			}
		}(i)
	}
	wg.Wait()
	s := m.Stats()
	if s.Hits+s.Misses != 400 {
		t.Errorf("gets = %d", s.Hits+s.Misses)
	}
	if d.connects.Load() != s.Opens {
		t.Errorf("driver connects %d != opens %d", d.connects.Load(), s.Opens)
	}
}

func TestDriversAccessor(t *testing.T) {
	m, _ := newManager(t, Options{})
	if m.Drivers() == nil {
		t.Error("Drivers() nil")
	}
}
