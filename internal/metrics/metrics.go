// Package metrics is a dependency-free instrumentation layer for the
// gateway's hot paths: counters, gauges and fixed-bucket latency
// histograms, collected in a Registry that renders the Prometheus text
// exposition format (served by the servlet's GET /metrics).
//
// All instruments are safe for concurrent use and updates are lock-free;
// the registry mutex is only taken at registration and scrape time.
// Function-backed instruments (CounterFunc/GaugeFunc) read an existing
// atomic counter at scrape time, so already-instrumented components are
// exported without double counting.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets, in seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot summarises one histogram (or one label of a vec) for
// status reports.
type HistogramSnapshot struct {
	// Label is the label value ("" for plain histograms).
	Label string `json:"label"`
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of observed values.
	Sum float64 `json:"sum"`
}

// HistogramVec is a family of histograms partitioned by one label.
type HistogramVec struct {
	bounds []float64
	mu     sync.RWMutex
	kids   map[string]*Histogram
}

// With returns the histogram for one label value, creating it on first use.
func (hv *HistogramVec) With(label string) *Histogram {
	hv.mu.RLock()
	h, ok := hv.kids[label]
	hv.mu.RUnlock()
	if ok {
		return h
	}
	hv.mu.Lock()
	defer hv.mu.Unlock()
	if h, ok = hv.kids[label]; ok {
		return h
	}
	h = newHistogram(hv.bounds)
	hv.kids[label] = h
	return h
}

// Snapshot summarises every label's histogram, sorted by label.
func (hv *HistogramVec) Snapshot() []HistogramSnapshot {
	hv.mu.RLock()
	out := make([]HistogramSnapshot, 0, len(hv.kids))
	for label, h := range hv.kids {
		out = append(out, HistogramSnapshot{Label: label, Count: h.Count(), Sum: h.Sum()})
	}
	hv.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one registered metric name: a scalar instrument, a value
// function, or a histogram vec.
type family struct {
	name, help string
	kind       kind
	label      string // vec label name, "" otherwise

	counter     *Counter
	counterFunc func() int64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
	vec         *HistogramVec
}

// Registry holds registered metrics and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]*family)} }

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("metrics: %q registered twice", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time (for components that already keep their own atomic counters).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, kind: kindCounter, counterFunc: fn})
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindGauge, gaugeFunc: fn})
}

// Histogram registers and returns a histogram with the given bucket upper
// bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.add(&family{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// HistogramVec registers and returns a one-label histogram family (nil
// buckets means DefBuckets).
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	hv := &HistogramVec{bounds: append([]float64(nil), buckets...), kids: make(map[string]*Histogram)}
	r.add(&family{name: name, help: help, kind: kindHistogram, label: label, vec: hv})
	return hv
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		var err error
		switch {
		case f.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
		case f.counterFunc != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.counterFunc())
		case f.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
		case f.gaugeFunc != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gaugeFunc()))
		case f.hist != nil:
			err = writeHistogram(w, f.name, "", "", f.hist)
		case f.vec != nil:
			f.vec.mu.RLock()
			labels := make([]string, 0, len(f.vec.kids))
			for l := range f.vec.kids {
				labels = append(labels, l)
			}
			f.vec.mu.RUnlock()
			sort.Strings(labels)
			for _, l := range labels {
				if err = writeHistogram(w, f.name, f.label, l, f.vec.With(l)); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name, label, value string, h *Histogram) error {
	pair := ""
	sep := ""
	if label != "" {
		pair = label + `="` + escapeLabel(value) + `"`
		sep = ","
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, pair, sep, formatFloat(b), cum); err != nil {
			return err
		}
	}
	count := h.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, pair, sep, count); err != nil {
		return err
	}
	braces := ""
	if pair != "" {
		braces = "{" + pair + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, braces, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braces, count)
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(s)
}
