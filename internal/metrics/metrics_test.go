package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	r.CounterFunc("test_func_total", "from fn", func() int64 { return 7 })
	r.GaugeFunc("test_func_gauge", "from fn", func() float64 { return -1.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_total a counter",
		"# TYPE test_total counter",
		"test_total 5",
		"# TYPE test_gauge gauge",
		"test_gauge 2.5",
		"test_func_total 7",
		"test_func_gauge -1.5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("stage_seconds", "per stage", "stage", []float64{1})
	hv.With("parse").Observe(0.5)
	hv.With("parse").Observe(2)
	hv.With("harvest").Observe(0.25)
	snap := hv.Snapshot()
	if len(snap) != 2 || snap[0].Label != "harvest" || snap[1].Label != "parse" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[1].Count != 2 || snap[1].Sum != 2.5 {
		t.Fatalf("parse snapshot = %+v", snap[1])
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`stage_seconds_bucket{stage="parse",le="1"} 1`,
		`stage_seconds_bucket{stage="parse",le="+Inf"} 2`,
		`stage_seconds_count{stage="parse"} 2`,
		`stage_seconds_bucket{stage="harvest",le="1"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "c", []float64{1})
	c := r.Counter("c_total", "c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("count = %d, counter = %d", h.Count(), c.Value())
	}
	if h.Sum() != 4000 {
		t.Fatalf("sum = %v", h.Sum())
	}
}
