// Hierarchical-federation benchmark: the all-sites fan-out over a flat
// federation (one direct leg per site) versus the republisher tree (one
// region leg per republisher, answered from merged views). At 64 leaf
// sites the tree collapses 64 remote round trips into 4, which is the
// latency gap this benchmark pins.
package gridrm_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gridrm/internal/core"
	fleetsim "gridrm/internal/sim"
)

// benchFederationHarness builds a 1-hub + leaves federation, optionally
// sharded across republishers, and waits until the all-sites row count is
// complete — for the tree, that means every leaf has been scraped into a
// republisher view.
func benchFederationHarness(b *testing.B, leaves, republishers int) *fleetsim.Harness {
	b.Helper()
	yaml := fmt.Sprintf(`
name: bench-federated-tree
duration: 5s
seed: 1
fleet:
  sites:
    - name: hub
      count: 1
      sources: 2
      hosts: 1
    - name: leaf
      count: %d
      sources: 1
      hosts: 1
federation:
  enabled: true
  directories: 1
  lookup_ttl: 1s
  entry_site: hub
  republishers: %d
  repub_refresh: 100ms
  repub_scrape: 200ms
load:
  clients: 1
  mix:
    - mode: cached
      scope: fanout
`, leaves, republishers)
	sc, err := fleetsim.ParseScenario([]byte(yaml))
	if err != nil {
		b.Fatal(err)
	}
	h, err := fleetsim.NewHarness(sc, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(h.Close)
	want := int64(2 + leaves) // hub's 2 hosts + 1 per leaf
	req := benchFanoutRequest()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := h.EntryGateway().QueryContext(context.Background(), req)
		if err == nil && resp.ResultSet.Next() {
			if n, _ := resp.ResultSet.GetInt("count(*)"); n == want {
				return h
			}
		}
		if time.Now().After(deadline) {
			b.Fatalf("federation never converged to %d rows", want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func benchFanoutRequest() core.QueryOptions {
	return core.QueryOptions{
		Principal: fleetsim.SimPrincipal,
		SQL:       "SELECT count(*) FROM Processor",
		Site:      core.AllSites,
	}
}

// BenchmarkFederatedTree compares the entry gateway's all-sites aggregate
// on the same 64-leaf fleet, flat versus sharded across 4 republishers.
func BenchmarkFederatedTree(b *testing.B) {
	const leaves = 64
	for _, cfg := range []struct {
		name   string
		repubs int
	}{
		{"flat", 0},
		{"tree-4repub", 4},
	} {
		b.Run(fmt.Sprintf("%s/sites-%d", cfg.name, leaves+1), func(b *testing.B) {
			h := benchFederationHarness(b, leaves, cfg.repubs)
			req := benchFanoutRequest()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.EntryGateway().QueryContext(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
