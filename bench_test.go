// Package gridrm_test holds the testing.B counterparts of the experiment
// harness (cmd/gridrm-bench): one benchmark family per experiment in
// DESIGN.md's index, plus micro-benchmarks for the hot primitives. Run with
//
//	go test -bench=. -benchmem
package gridrm_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/agents/netlogger"
	"gridrm/internal/agents/sim"
	"gridrm/internal/agents/snmp"
	"gridrm/internal/core"
	"gridrm/internal/driver"
	"gridrm/internal/drivers/memdrv"
	"gridrm/internal/event"
	"gridrm/internal/glue"
	"gridrm/internal/gma"
	"gridrm/internal/pool"
	"gridrm/internal/qcache"
	"gridrm/internal/resultset"
	"gridrm/internal/router"
	"gridrm/internal/security"
	"gridrm/internal/sitekit"
	"gridrm/internal/sqlparse"
	"gridrm/internal/trace"
	"gridrm/internal/web"
)

var benchPrincipal = security.Principal{Name: "bench", Roles: []string{"operator"}}

// ---------------------------------------------------------------- E1: Fig 3

// fullStack builds a sitekit site + gateway once per benchmark.
func fullStack(b *testing.B) (*sitekit.Site, *core.Gateway) {
	b.Helper()
	site, err := sitekit.Start(sitekit.Options{Name: "bench", Hosts: 4, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)
	gw, err := sitekit.NewGateway(site.Manifest(), site.Opts, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gw.Close)
	return site, gw
}

func BenchmarkE1QueryPath(b *testing.B) {
	_, gw := fullStack(b)
	var byDriver = map[string]string{}
	for _, src := range gw.Sources() {
		if len(src.Drivers) == 1 {
			if _, ok := byDriver[src.Drivers[0]]; !ok {
				byDriver[src.Drivers[0]] = src.URL
			}
		}
	}
	for _, drv := range []string{"jdbc-snmp", "jdbc-ganglia", "jdbc-nws", "jdbc-netlogger", "jdbc-scms"} {
		url := byDriver[drv]
		for _, mode := range []core.Mode{core.ModeRealTime, core.ModeCached} {
			b.Run(fmt.Sprintf("%s/%s", drv, mode), func(b *testing.B) {
				req := core.QueryOptions{Principal: benchPrincipal,
					SQL: "SELECT * FROM Processor", Sources: []string{url}, Mode: mode}
				if _, err := gw.QueryContext(context.Background(), req); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := gw.QueryContext(context.Background(), req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --------------------------------------------------------- E2: Fig 5/Table 2

func e2Manager(n int) (*driver.Manager, string) {
	dm := driver.NewManager()
	backend := memdrv.NewBackend([]string{"h1"})
	for i := 0; i < n-1; i++ {
		_ = dm.RegisterDriver(memdrv.New(fmt.Sprintf("jdbc-f%02d", i), fmt.Sprintf("f%02d", i), backend))
	}
	_ = dm.RegisterDriver(memdrv.New("jdbc-target", "target", backend))
	return dm, "gridrm:target://agent:1"
}

func BenchmarkE2DriverSelection(b *testing.B) {
	for _, n := range []int{4, 64} {
		b.Run(fmt.Sprintf("dynamic-scan-%d", n), func(b *testing.B) {
			dm, url := e2Manager(n)
			for i := 0; i < b.N; i++ {
				dm.ClearCache()
				conn, err := dm.Connect(url, nil)
				if err != nil {
					b.Fatal(err)
				}
				_ = conn.Close()
			}
		})
	}
	b.Run("last-good-cache", func(b *testing.B) {
		dm, url := e2Manager(64)
		for i := 0; i < b.N; i++ {
			conn, err := dm.Connect(url, nil)
			if err != nil {
				b.Fatal(err)
			}
			_ = conn.Close()
		}
	})
	b.Run("static-preference", func(b *testing.B) {
		dm, url := e2Manager(64)
		dm.SetPreferences(url, []string{"jdbc-target"})
		dm.SetCaching(false)
		for i := 0; i < b.N; i++ {
			conn, err := dm.Connect(url, nil)
			if err != nil {
				b.Fatal(err)
			}
			_ = conn.Close()
		}
	})
}

// ------------------------------------------------------------- E3: §3.1.2

func BenchmarkE3Pooling(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "pooled"
		if disabled {
			name = "unpooled"
		}
		b.Run(name, func(b *testing.B) {
			backend := memdrv.NewBackend([]string{"h1"})
			backend.SetConnectDelay(100 * time.Microsecond)
			dm := driver.NewManager()
			_ = dm.RegisterDriver(memdrv.New("jdbc-mem", "mem", backend))
			cm := pool.New(dm, pool.Options{Disabled: disabled})
			for i := 0; i < b.N; i++ {
				conn, err := cm.Get("gridrm:mem://a:1", nil)
				if err != nil {
					b.Fatal(err)
				}
				stmt, _ := conn.CreateStatement()
				if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
					b.Fatal(err)
				}
				conn.Release()
			}
		})
	}
}

// ------------------------------------------------------------- E4: §3.2.3

func BenchmarkE4DriverGranularity(b *testing.B) {
	site, gw := fullStack(b)
	_ = site
	run := func(b *testing.B, url, sql string, mode core.Mode) {
		req := core.QueryOptions{Principal: benchPrincipal, SQL: sql,
			Sources: []string{url}, Mode: mode}
		if _, err := gw.QueryContext(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gw.QueryContext(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	}
	var snmpURL, gangliaURL string
	for _, src := range gw.Sources() {
		if len(src.Drivers) != 1 {
			continue
		}
		switch src.Drivers[0] {
		case "jdbc-snmp":
			if snmpURL == "" {
				snmpURL = src.URL
			}
		case "jdbc-ganglia":
			gangliaURL = src.URL
		}
	}
	b.Run("snmp-scalar-group", func(b *testing.B) {
		run(b, snmpURL, "SELECT * FROM Processor", core.ModeRealTime)
	})
	b.Run("snmp-table-walk", func(b *testing.B) {
		run(b, snmpURL, "SELECT * FROM Process", core.ModeRealTime)
	})
	b.Run("ganglia-xml-dump", func(b *testing.B) {
		run(b, gangliaURL, "SELECT * FROM Processor", core.ModeRealTime)
	})
}

// --------------------------------------------------------------- E5: Fig 4

func BenchmarkE5Events(b *testing.B) {
	b.Run("publish-dispatch", func(b *testing.B) {
		m := event.NewManager(event.Options{})
		defer m.Close()
		var n atomic.Int64
		m.Subscribe(event.Filter{}, func(event.Event) { n.Add(1) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Publish(event.Event{Name: "x", Time: time.Unix(int64(i), 0)})
		}
		m.Drain()
	})
	for _, fanout := range []int{4, 32} {
		b.Run(fmt.Sprintf("fanout-%d", fanout), func(b *testing.B) {
			m := event.NewManager(event.Options{})
			defer m.Close()
			var n atomic.Int64
			for i := 0; i < fanout; i++ {
				m.Subscribe(event.Filter{}, func(event.Event) { n.Add(1) })
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Publish(event.Event{Name: "x", Time: time.Unix(int64(i), 0)})
			}
			m.Drain()
		})
	}
	b.Run("threshold-rule", func(b *testing.B) {
		m := event.NewManager(event.Options{})
		defer m.Close()
		_ = m.AddRule(event.ThresholdRule{Name: "alarm",
			Match: event.Filter{Name: "load"}, Op: event.Above, Threshold: 1e12})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Publish(event.Event{Name: "load", Value: 1, Time: time.Unix(int64(i), 0)})
		}
		m.Drain()
	})
}

// ------------------------------------------------------------ E6: §4/Fig 9

func BenchmarkE6CacheScaling(b *testing.B) {
	build := func() (*core.Gateway, *memdrv.Backend) {
		backend := memdrv.NewBackend([]string{"h1", "h2", "h3", "h4"})
		backend.SetQueryDelay(100 * time.Microsecond)
		gw := core.New(core.Config{Name: "e6", Cache: qcache.Options{TTL: time.Hour},
			Pool: pool.Options{MaxIdlePerSource: 64}})
		d := memdrv.New("jdbc-mem", "mem", backend)
		_ = gw.RegisterDriver(d, d.Schema())
		_ = gw.AddSource(core.SourceConfig{URL: "gridrm:mem://a:1"})
		return gw, backend
	}
	for _, mode := range []core.Mode{core.ModeRealTime, core.ModeCached} {
		b.Run(mode.String(), func(b *testing.B) {
			gw, _ := build()
			defer gw.Close()
			req := core.QueryOptions{Principal: benchPrincipal,
				SQL: "SELECT * FROM Processor", Mode: mode}
			if _, err := gw.QueryContext(context.Background(), req); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := gw.QueryContext(context.Background(), req); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// --------------------------------------------------------------- E7: Fig 1

func BenchmarkE7GlobalLayer(b *testing.B) {
	dir := gma.NewDirectory(0, nil)
	mk := func(name string) (*core.Gateway, *httptest.Server) {
		gw := core.New(core.Config{Name: name})
		backend := memdrv.NewBackend([]string{name + "-n1"})
		d := memdrv.New("jdbc-mem", "mem", backend)
		_ = gw.RegisterDriver(d, d.Schema())
		_ = gw.AddSource(core.SourceConfig{URL: "gridrm:mem://" + name + ":1"})
		srv := httptest.NewServer(web.NewServer(gw, nil, nil))
		_ = dir.Register(gma.Registration{Name: name, Endpoint: srv.URL})
		gw.SetGlobalRouter(gma.NewContextRouter(dir, web.RemoteQueryContext, name))
		return gw, srv
	}
	gwA, srvA := mk("siteA")
	defer gwA.Close()
	defer srvA.Close()
	gwB, srvB := mk("siteB")
	defer gwB.Close()
	defer srvB.Close()
	client := &web.Client{BaseURL: srvA.URL, Principal: benchPrincipal}

	b.Run("local-http", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor",
				Mode: core.ModeRealTime}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remote-1hop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor",
				Site: "siteB", Mode: core.ModeRealTime}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("directory-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok, _ := dir.Lookup("siteB"); !ok {
				b.Fatal("lost site")
			}
		}
	})
}

// ------------------------------------------------------------------ E8: §2

func BenchmarkE8Security(b *testing.B) {
	alice := security.Principal{Name: "alice", Roles: []string{"operator"}}
	nobody := security.Principal{Name: "zz"}
	mkCoarse := func(rules int) *security.CoarsePolicy {
		p := security.NewCoarsePolicy(security.Deny)
		p.Add(security.CoarseRule{Principal: "alice", Decision: security.Allow})
		for i := 1; i < rules; i++ {
			p.Add(security.CoarseRule{Principal: fmt.Sprintf("user%05d", i), Decision: security.Allow})
		}
		return p
	}
	b.Run("coarse-allow-first-rule", func(b *testing.B) {
		p := mkCoarse(10000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Check(alice, security.OpQueryRealTime)
		}
	})
	b.Run("coarse-deny-scan-10k", func(b *testing.B) {
		p := mkCoarse(10000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Check(nobody, security.OpQueryRealTime)
		}
	})
	b.Run("fine-pattern-match", func(b *testing.B) {
		p := security.NewFinePolicy(security.Deny)
		p.Add(security.FineRule{Principal: "alice", Source: "gridrm:snmp://%", Decision: security.Allow})
		for i := 0; i < b.N; i++ {
			p.Check(alice, "gridrm:snmp://h:1", glue.GroupProcessor)
		}
	})
}

// -------------------------------------------------------------- E9: §3.2.1

func BenchmarkE9BasePattern(b *testing.B) {
	b.Run("unimplemented-error-path", func(b *testing.B) {
		var s driver.Stmt = driver.UnimplementedStmt{}
		for i := 0; i < b.N; i++ {
			if _, err := s.ExecuteQuery("q"); err == nil {
				b.Fatal("expected error")
			}
		}
	})
}

// --------------------------------------------------- micro-benchmarks

func BenchmarkSQLParse(b *testing.B) {
	const q = "SELECT HostName, LoadLast1Min FROM Processor WHERE LoadLast1Min > 2.5 AND HostName LIKE 'node%' ORDER BY LoadLast1Min DESC LIMIT 10"
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyToResultSet(b *testing.B) {
	g := glue.MustLookup(glue.GroupProcessor)
	meta, _ := resultset.MetadataForGroup(g, nil)
	rb := resultset.NewBuilder(meta)
	for i := 0; i < 64; i++ {
		row := make([]any, len(g.Fields))
		row[g.FieldIndex("HostName")] = fmt.Sprintf("node%02d", i)
		row[g.FieldIndex("LoadLast1Min")] = float64(i % 8)
		rb.Append(row...)
	}
	rs, err := rb.Build()
	if err != nil {
		b.Fatal(err)
	}
	q, _ := sqlparse.Parse("SELECT HostName FROM Processor WHERE LoadLast1Min > 3 ORDER BY HostName LIMIT 5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.ApplyToResultSet(q, rs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSNMPMessageRoundTrip(b *testing.B) {
	m := &snmp.Message{Community: "public", PDUType: snmp.PDUGet, RequestID: 7,
		Varbinds: []snmp.Varbind{
			{OID: snmp.MustOID("1.3.6.1.2.1.1.5.0"), Value: snmp.StringValue("node01")},
			{OID: snmp.MustOID("1.3.6.1.2.1.25.2.2.0"), Value: snmp.IntValue(1048576)},
		}}
	for i := 0; i < b.N; i++ {
		buf, err := m.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snmp.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildMIB(b *testing.B) {
	site := sim.New(sim.Config{Hosts: 1, Seed: 1})
	site.StepN(3)
	snap, _ := site.Snapshot(site.HostNames()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snmp.BuildMIB(snap)
	}
}

func BenchmarkULMParse(b *testing.B) {
	line := netlogger.Record{Date: time.Unix(1054468800, 0).UTC(), Host: "node01",
		Prog: "sensor", Level: "Usage", Event: "load.one", Value: 1.25}.Format()
	for i := 0; i < b.N; i++ {
		if _, err := netlogger.ParseRecord(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimStep(b *testing.B) {
	site := sim.New(sim.Config{Hosts: 32, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site.Step()
	}
}

func BenchmarkQueryCache(b *testing.B) {
	c := qcache.New(qcache.Options{TTL: time.Hour})
	meta, _ := resultset.NewMetadata([]resultset.Column{{Name: "X", Kind: glue.Int}})
	rs, _ := resultset.NewBuilder(meta).Append(int64(1)).Build()
	c.Put("gridrm:mem://a:1", "SELECT * FROM Processor", rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Get("gridrm:mem://a:1", "SELECT * FROM Processor"); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkSubscriberFanout measures the push router's Publish cost as one
// harvest's rows fan out to 1, 64, and 1024 live subscribers — the
// continuous-query hot path. Publish must never block, so the interesting
// number is how its per-row cost grows with the subscriber count while every
// consumer is actively draining.
func BenchmarkSubscriberFanout(b *testing.B) {
	for _, n := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("subs-%d", n), func(b *testing.B) {
			r := router.New(router.Options{QueueSize: 256, ReplaySize: -1, Stall: -1})
			var drained atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				sub, err := r.Subscribe(router.SubscribeOptions{Name: fmt.Sprintf("s%d", i)})
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-sub.Done():
							return
						case <-sub.C():
							drained.Add(1)
						}
					}
				}()
			}
			cols := []string{"HostName", "LoadLast1Min"}
			rows := [][]any{{"h1", 0.5}, {"h2", 0.7}, {"h3", 0.9}, {"h4", 1.1}}
			at := time.Unix(1054468800, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Publish("gridrm:mem://bench:1", "Processor", cols, rows, at)
			}
			b.StopTimer()
			if err := r.Close(context.Background()); err != nil {
				b.Fatal(err)
			}
			wg.Wait()
		})
	}
}

// BenchmarkQueryTracing measures the overhead of full-sampling distributed
// tracing on the in-process query path: "untraced" disables sampling,
// "traced" records every query. The acceptance bar for the tracing layer
// is ≤5% p50 regression at full sampling.
func BenchmarkQueryTracing(b *testing.B) {
	for _, bc := range []struct {
		name   string
		sample float64
	}{
		{"untraced", -1}, // negative = sampling off
		{"traced", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			gw := core.New(core.Config{Name: "bench",
				Trace: trace.Options{Sample: bc.sample}})
			b.Cleanup(gw.Close)
			backend := memdrv.NewBackend([]string{"h1", "h2", "h3", "h4"})
			d := memdrv.New("jdbc-mem", "mem", backend)
			if err := gw.RegisterDriver(d, d.Schema()); err != nil {
				b.Fatal(err)
			}
			if err := gw.AddSource(core.SourceConfig{URL: "gridrm:mem://bench:1"}); err != nil {
				b.Fatal(err)
			}
			req := core.QueryOptions{Principal: benchPrincipal,
				SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}
			ctx := context.Background()
			if _, err := gw.QueryContext(ctx, req); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gw.QueryContext(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
