module gridrm

go 1.22
