// Quickstart: stand up a simulated Grid site with five kinds of native
// monitoring agents, run a GridRM gateway over them, and query the lot with
// SQL — heterogeneous sources in, one homogeneous GLUE table out.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gridrm/internal/core"
	"gridrm/internal/security"
	"gridrm/internal/sitekit"
)

func main() {
	// 1. A simulated site: 4 hosts behind per-host SNMP agents plus
	//    site-wide Ganglia, NWS, NetLogger and SCMS daemons.
	site, err := sitekit.Start(sitekit.Options{Name: "demo", Hosts: 4, Seed: 2003})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()
	fmt.Printf("site %q: %d hosts, %d SNMP agents + Ganglia/NWS/NetLogger/SCMS\n\n",
		site.Opts.Name, site.Opts.Hosts, len(site.SNMP))

	// 2. A gateway with every bundled driver registered and every agent
	//    added as a data source.
	gw, err := sitekit.NewGateway(site.Manifest(), site.Opts, false)
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	me := security.Principal{Name: "quickstart", Roles: []string{"operator"}}

	// 3. SQL in, consolidated GLUE ResultSet out (paper Fig 3): the same
	//    query fans out to all drivers and the rows merge into one table.
	resp, err := gw.QueryContext(context.Background(), core.QueryOptions{
		Principal: me,
		SQL:       "SELECT HostName, LoadLast1Min, Utilization FROM Processor ORDER BY HostName",
		Mode:      core.ModeRealTime,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SELECT HostName, LoadLast1Min, Utilization FROM Processor\n")
	fmt.Printf("(%d rows from %d sources in %s)\n%s\n",
		resp.ResultSet.Len(), len(resp.Sources), resp.Elapsed, resp.ResultSet)

	// 4. WHERE/ORDER/LIMIT work across the merged view; unmapped fields
	//    come back NULL per the GLUE translation rule.
	resp, err = gw.QueryContext(context.Background(), core.QueryOptions{
		Principal: me,
		SQL: "SELECT HostName, Model, ClockSpeed FROM Processor " +
			"WHERE Model IS NOT NULL ORDER BY ClockSpeed DESC LIMIT 4",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fastest CPUs (sources that know the model):\n%s\n", resp.ResultSet)

	// 5. Cached mode limits resource intrusion: repeat queries within the
	//    TTL never touch the agents (paper §4).
	before := gw.Stats().Harvests
	for i := 0; i < 5; i++ {
		if _, err := gw.QueryContext(context.Background(), core.QueryOptions{Principal: me,
			SQL: "SELECT * FROM Memory", Mode: core.ModeCached}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("5 cached Memory queries cost %d harvests (cache served %d)\n\n",
		gw.Stats().Harvests-before, gw.Stats().CacheServed)

	// 6. Time passes; historical queries read the gateway's internal store
	//    with provenance columns.
	site.Step(3)
	if _, err := gw.QueryContext(context.Background(), core.QueryOptions{Principal: me, SQL: "SELECT * FROM Memory",
		Mode: core.ModeRealTime}); err != nil {
		log.Fatal(err)
	}
	resp, err = gw.QueryContext(context.Background(), core.QueryOptions{
		Principal: me,
		SQL:       "SELECT HostName, RAMAvailable, SampledAt FROM Memory ORDER BY SampledAt LIMIT 6",
		Mode:      core.ModeHistorical,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("historical Memory samples:\n%s", resp.ResultSet)
}
