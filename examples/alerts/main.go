// Alerts: the paper's Fig 4 event path, end to end. Native NetLogger usage
// records stream into the gateway's Event Manager through the inbound event
// driver, a threshold rule synthesises load alarms, listeners see them, and
// the alerts are transmitted back out to the NetLogger data source in its
// native ULM format.
//
//	go run ./examples/alerts
package main

import (
	"fmt"
	"log"
	"time"

	"gridrm/internal/drivers/netloggerdrv"
	"gridrm/internal/event"
	"gridrm/internal/sitekit"
)

func main() {
	// A busy site: the low alarm threshold makes the simulator emit
	// load-high events while we watch.
	site, err := sitekit.Start(sitekit.Options{Name: "noisy", Hosts: 6, Seed: 77, LoadAlarm: 1.5})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()
	nlURL := "gridrm:netlogger://" + site.NL.Addr()

	mgr := event.NewManager(event.Options{HistorySize: 1024})
	defer mgr.Close()

	// Inbound: consume the NetLogger STREAM, translating ULM records to
	// GridRM events via the driver's Formatter.
	if err := mgr.AttachInbound(&netloggerdrv.InboundEvents{URL: nlURL}); err != nil {
		log.Fatal(err)
	}

	// A threshold rule over the incoming usage records: load above 2.0
	// raises a GridRM alert (with hysteresis so it doesn't flap).
	if err := mgr.AddRule(event.ThresholdRule{
		Name:      "load-threshold",
		Match:     event.Filter{Name: "load.one"},
		Op:        event.Above,
		Threshold: 2.0,
		Rearm:     0.75,
	}); err != nil {
		log.Fatal(err)
	}

	// Outbound: GridRM alerts are translated back to native ULM records
	// and transmitted to the data source ("GridRM can pass events back
	// out to data sources as required", §3.1.5).
	mgr.AddOutbound(event.Filter{Severity: event.SeverityAlert},
		&netloggerdrv.OutboundEvents{URL: nlURL})

	// A console listener, like the paper's monitoring clients.
	alerts := make(chan event.Event, 64)
	mgr.Subscribe(event.Filter{Severity: event.SeverityAlert}, func(ev event.Event) {
		select {
		case alerts <- ev:
		default:
		}
	})

	// Let the site run for 120 simulated seconds, sampling each tick so
	// the NetLogger agent keeps producing records.
	fmt.Println("running the site for 120 simulated seconds...")
	time.Sleep(100 * time.Millisecond) // let the STREAM attach
	for i := 0; i < 120; i++ {
		site.Step(1)
		// Pace the simulation so the event stream keeps up; a real site
		// produces records over two minutes, not two milliseconds.
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.After(2 * time.Second)
	var seen []event.Event
collect:
	for {
		select {
		case ev := <-alerts:
			seen = append(seen, ev)
		case <-deadline:
			break collect
		default:
			if len(seen) > 0 {
				// give stragglers a moment, then finish
				select {
				case ev := <-alerts:
					seen = append(seen, ev)
					continue
				case <-time.After(300 * time.Millisecond):
					break collect
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	fmt.Printf("\n%d alerts raised by the threshold rule:\n", len(seen))
	for _, ev := range seen {
		fmt.Printf("  %s  %-16s %-16s load=%.2f\n",
			ev.Time.Format("15:04:05"), ev.Name, ev.Host, ev.Value)
	}

	// The alert history is recorded for later analysis...
	hist := mgr.History(event.Filter{Severity: event.SeverityAlert}, time.Time{})
	fmt.Printf("\nevent manager history holds %d alerts; stats: %+v\n", len(hist), mgr.Stats())

	// ...and each alert really did arrive back at the data source as a
	// native ULM record.
	echoed := 0
	for _, ev := range seen {
		if rec, ok := site.NL.Latest(ev.Host, "load-threshold"); ok && rec.Prog == "gridrm" {
			echoed++
		}
	}
	fmt.Printf("alerts visible as native NetLogger records (PROG=gridrm): %d\n", echoed)

	// The simulator's own load-high alarms flowed through the same bridge.
	simAlerts := mgr.History(event.Filter{Name: "load-high"}, time.Time{})
	fmt.Printf("native simulator load-high alerts bridged inbound: %d\n", len(simAlerts))
}
