// Dynamicdrivers: the driver-management lifecycle of the paper's Figures
// 5–9, driven through the gateway's servlet interface. Drivers are
// activated at runtime from the gateway's repository, data sources with no
// protocol hint are bound to drivers dynamically (the Table 2 AcceptsURL
// scan), the last-good selection is cached, prioritised preferences
// override it, and a dead agent exercises the failover policy and the
// tree view's failure reporting.
//
//	go run ./examples/dynamicdrivers
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/driver"
	"gridrm/internal/drivers/scmsdrv"
	"gridrm/internal/drivers/snmpdrv"
	"gridrm/internal/schema"
	"gridrm/internal/security"
	"gridrm/internal/sitekit"
	"gridrm/internal/web"
)

func main() {
	site, err := sitekit.Start(sitekit.Options{Name: "dyn", Hosts: 3, Seed: 555})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()

	// A bare gateway: NO drivers registered yet.
	gw := core.New(core.Config{Name: "dyn"})
	defer gw.Close()
	sm := gw.SchemaManager()

	// The servlet's driver repository stands in for the paper's runtime
	// JAR upload (see DESIGN.md): clients activate drivers by name.
	repo := map[string]web.DriverFactory{
		"jdbc-snmp": func() (driver.Driver, *schema.DriverSchema) {
			return snmpdrv.New(sm), snmpdrv.Schema()
		},
		"jdbc-scms": func() (driver.Driver, *schema.DriverSchema) {
			return scmsdrv.New(sm), scmsdrv.Schema()
		},
	}
	srv := web.NewServer(gw, repo, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{Handler: srv}
	go func() { _ = httpServer.Serve(ln) }()
	defer httpServer.Close()

	client := &web.Client{
		BaseURL:   "http://" + ln.Addr().String(),
		Principal: security.Principal{Name: "operator", Roles: []string{"operator"}},
	}
	ctx := context.Background()

	show := func(header string) {
		drvs, err := client.Drivers(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(header)
		for _, d := range drvs {
			state := "available"
			if d.Active {
				state = "ACTIVE"
			}
			fmt.Printf("  %-12s %-10s groups=%s\n", d.Name, state, strings.Join(d.Groups, ","))
		}
	}
	show("driver registration panel (Fig 8), before activation:")

	// 1. Activate drivers at runtime — no gateway restart.
	for _, name := range []string{"jdbc-snmp", "jdbc-scms"} {
		if err := client.ActivateDriver(ctx, name); err != nil {
			log.Fatal(err)
		}
	}
	show("\nafter runtime activation:")

	// 2. Register data sources WITHOUT protocol hints: the
	//    GridRMDriverManager must locate a compatible driver dynamically
	//    by probing (Fig 5 / Table 2).
	m := site.Manifest()
	snmpBare := "gridrm://" + m.SNMP[0]
	scmsBare := "gridrm://" + m.SCMS
	for _, url := range []string{snmpBare, scmsBare} {
		if err := client.AddSource(ctx, core.SourceConfig{
			URL:   url,
			Props: driver.Properties{"timeout": "400ms"},
		}); err != nil {
			log.Fatal(err)
		}
	}

	resp, err := client.Query(ctx, core.QueryOptions{
		SQL:  "SELECT HostName, LoadLast1Min FROM Processor ORDER BY HostName",
		Mode: core.ModeRealTime,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndynamic driver location results:")
	for _, s := range resp.Sources {
		fmt.Printf("  %-40s -> %s (%d rows)\n", s.Source, s.Driver, s.Rows)
	}

	// 3. The selection is cached; look at the status counters.
	st, err := client.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndriver manager after dynamic binding: scans=%d probes=%d cache-hits=%d\n",
		st.Drivers.Scans, st.Drivers.ScanProbes, st.Drivers.CacheHits)
	if _, err := client.Query(ctx, core.QueryOptions{SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}); err != nil {
		log.Fatal(err)
	}
	st2, _ := client.Status(ctx)
	fmt.Printf("after a repeat query (cache hits do not rescan): scans=%d probes=%d cache-hits=%d\n",
		st2.Drivers.Scans, st2.Drivers.ScanProbes, st2.Drivers.CacheHits)

	// 4. Prioritised preferences (Fig 8): pin the SCMS agent to its
	//    driver explicitly.
	if err := client.SetPreferences(ctx, scmsBare, []string{"jdbc-scms"}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npinned %s to [jdbc-scms]\n", scmsBare)

	// 5. Kill the SNMP agent's host: the next poll fails, the tree view
	//    shows the failure icon state (Fig 9).
	_ = site.Sim.SetHostDown(site.Sim.HostNames()[0], true)
	if _, err := client.Poll(ctx, snmpBare, "Processor"); err != nil {
		fmt.Printf("\nexplicit poll of dead agent failed as expected\n")
	} else {
		resp, _ := client.Query(ctx, core.QueryOptions{SQL: "SELECT * FROM Processor",
			Sources: []string{snmpBare}, Mode: core.ModeRealTime})
		for _, s := range resp.Sources {
			if s.Err != "" {
				fmt.Printf("\npoll failure recorded: %s\n", s.Err)
			}
		}
	}
	tree, err := client.Tree(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncached tree view (Fig 9):")
	for _, n := range tree {
		health := "ok"
		if n.Source.LastError != "" {
			health = "POLL FAILED"
		}
		fmt.Printf("  %-40s [%s] driver=%s cached-results=%d\n",
			n.Source.URL, health, n.Source.LastDriver, len(n.Cached))
	}

	// 6. Deactivate a driver at runtime; its source becomes unservable,
	//    the other keeps working.
	if err := client.DeactivateDriver(ctx, "jdbc-snmp"); err != nil {
		log.Fatal(err)
	}
	resp, err = client.Query(ctx, core.QueryOptions{SQL: "SELECT HostName FROM Processor",
		Mode: core.ModeRealTime})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter deactivating jdbc-snmp: %d rows still served (via jdbc-scms)\n",
		resp.ResultSet.Len())
	_ = time.Now
}
