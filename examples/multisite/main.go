// Multisite: the paper's Fig 1 — three Grid sites, each with its own
// simulated agents and GridRM gateway (servlet), federated through a GMA
// directory. A client connected to site A transparently reads resource data
// owned by sites B and C; requests for remote data are routed through the
// Global layer to the gateway that owns the data.
//
//	go run ./examples/multisite
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/glue"
	"gridrm/internal/gma"
	"gridrm/internal/security"
	"gridrm/internal/sitekit"
	"gridrm/internal/web"
)

type deployment struct {
	site     *sitekit.Site
	gw       *core.Gateway
	server   *http.Server
	endpoint string
	reg      *gma.Registrar
}

func deploySite(name string, hosts int, seed int64, dir gma.DirectoryService,
	hostDirectory *gma.Directory) (*deployment, error) {
	site, err := sitekit.Start(sitekit.Options{Name: name, Hosts: hosts, Seed: seed})
	if err != nil {
		return nil, err
	}
	gw, err := sitekit.NewGateway(site.Manifest(), site.Opts, false)
	if err != nil {
		site.Close()
		return nil, err
	}
	var dirHandler http.Handler
	if hostDirectory != nil {
		dirHandler = hostDirectory.Handler()
	}
	srv := web.NewServer(gw, nil, dirHandler)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		site.Close()
		return nil, err
	}
	d := &deployment{
		site:     site,
		gw:       gw,
		endpoint: "http://" + ln.Addr().String(),
		server:   &http.Server{Handler: srv},
	}
	go func() { _ = d.server.Serve(ln) }()

	// The resilient router caches lookups (stale-served during a directory
	// outage), breaks per remote endpoint, and hedges stragglers.
	router := gma.NewResilientRouter(dir, web.RemoteQueryContext, name, gma.Config{
		RetryAttempts: 1,
		HedgeAfter:    500 * time.Millisecond,
	})
	router.RegisterMetrics(gw.Metrics())
	gw.SetGlobalRouter(router)
	srv.SetSiteLister(router.Sites)
	d.reg = gma.NewRegistrar(dir, gma.Registration{
		Name: name, Endpoint: d.endpoint, Groups: glue.GroupNames(),
	}, 10*time.Second)
	if err := d.reg.Start(); err != nil {
		d.close()
		return nil, err
	}
	return d, nil
}

// close tears the site down in dependency order: deregister from the GMA
// directory so peers stop routing here, drain the HTTP listener, then shut
// the gateway down (finishing in-flight queries) before stopping the agents.
func (d *deployment) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if d.reg != nil {
		d.reg.Stop()
	}
	_ = d.server.Shutdown(ctx)
	_ = d.gw.Shutdown(ctx)
	d.site.Close()
}

func main() {
	// Site A hosts the GMA directory alongside its gateway.
	directory := gma.NewDirectory(time.Minute, nil)

	siteA, err := deploySite("siteA", 3, 1001, directory, directory)
	if err != nil {
		log.Fatal(err)
	}
	defer siteA.close()
	siteB, err := deploySite("siteB", 5, 1002, directory, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer siteB.close()
	siteC, err := deploySite("siteC", 2, 1003, directory, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer siteC.close()

	for _, p := range directory.Producers() {
		fmt.Printf("GMA producer: %-8s at %s\n", p.Site, p.Endpoint)
	}

	// A client connects to ANY gateway — here site A — and queries each
	// site by name; remote requests route gateway-to-gateway.
	client := &web.Client{
		BaseURL:   siteA.endpoint,
		Principal: security.Principal{Name: "multisite-demo", Roles: []string{"operator"}},
	}
	ctx := context.Background()
	sites, err := client.Sites(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsites reachable from %s: %v\n", siteA.endpoint, sites)

	for _, target := range sites {
		resp, err := client.Query(ctx, core.QueryOptions{
			SQL:  "SELECT HostName, LoadLast1Min FROM Processor ORDER BY LoadLast1Min DESC LIMIT 3",
			Site: target,
			Mode: core.ModeRealTime,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nbusiest hosts at %s (answered by %s in %s):\n%s",
			target, resp.Site, resp.Elapsed.Round(time.Microsecond), resp.ResultSet)
	}

	// The same consolidated view works for capacity planning across the
	// virtual organisation: free memory per site.
	fmt.Println()
	for _, target := range sites {
		resp, err := client.Query(ctx, core.QueryOptions{
			SQL:  "SELECT HostName, RAMAvailable FROM Memory ORDER BY RAMAvailable DESC LIMIT 1",
			Site: target,
		})
		if err != nil {
			log.Fatal(err)
		}
		resp.ResultSet.Next()
		host, _ := resp.ResultSet.GetString("HostName")
		free, _ := resp.ResultSet.GetInt("RAMAvailable")
		fmt.Printf("most free memory at %-8s %-16s %5d MB\n", target+":", host, free)
	}

	// One SQL statement over the whole virtual organisation: Site "*"
	// fans out to every federated gateway and consolidates the answers,
	// so ORDER BY/LIMIT are global.
	resp, err := client.Query(ctx, core.QueryOptions{
		SQL:  "SELECT HostName, LoadLast1Min FROM Processor ORDER BY LoadLast1Min DESC LIMIT 5",
		Site: core.AllSites,
		Mode: core.ModeRealTime,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe 5 busiest hosts in the whole VO (%d sites consolidated):\n%s",
		len(sites), resp.ResultSet)

	fmt.Printf("\nsite A gateway stats: %+v\n", siteA.gw.Stats())
}
